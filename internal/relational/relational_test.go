package relational

import (
	"fmt"
	"strings"
	"testing"

	"vxml/internal/storage"
	"vxml/internal/vector"
	"vxml/internal/vectorize"
	"vxml/internal/xmlmodel"
)

func newStore(t testing.TB) *storage.Store {
	t.Helper()
	st, err := storage.OpenStore(t.TempDir(), 128)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	return st
}

func TestRowTableScan(t *testing.T) {
	st := newStore(t)
	tbl, w, err := CreateRowTable(st, "people", []string{"id", "name", "age"})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		if err := w.Append([]string{fmt.Sprint(i), "p" + fmt.Sprint(i), fmt.Sprint(i % 90)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if tbl.NumRows() != 1000 {
		t.Fatalf("rows = %d", tbl.NumRows())
	}
	count := 0
	err = tbl.Scan(func(rowID int64, vals []string) error {
		if vals[0] != fmt.Sprint(rowID) {
			return fmt.Errorf("row %d id %s", rowID, vals[0])
		}
		if vals[2] == "42" {
			count++
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if count != 11 { // 42 and 42+90*k < 1000: 42,132,...,972
		t.Errorf("matches = %d, want 11", count)
	}
	if tbl.Col("age") != 2 || tbl.Col("missing") != -1 {
		t.Error("Col lookup broken")
	}
}

func TestRowWriterArity(t *testing.T) {
	st := newStore(t)
	_, w, _ := CreateRowTable(st, "t", []string{"a", "b"})
	if err := w.Append([]string{"only-one"}); err == nil {
		t.Error("arity mismatch accepted")
	}
}

func TestColTableScanWhere(t *testing.T) {
	st := newStore(t)
	tbl, w, err := CreateColTable(st, "obj", []string{"ra", "dec", "mag", "class"})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		class := "STAR"
		if i%10 == 0 {
			class = "GALAXY"
		}
		if err := w.Append([]string{fmt.Sprint(i), fmt.Sprint(-i), fmt.Sprint(i % 30), class}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	var got []string
	err = tbl.ScanWhere("class", func(v string) bool { return v == "GALAXY" },
		[]string{"ra", "dec"},
		func(rowID int64, vals []string) error {
			got = append(got, vals[0]+"/"+vals[1])
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 50 || got[0] != "0/0" || got[1] != "10/-10" {
		t.Errorf("got %d rows, first %v", len(got), got[:2])
	}
	if _, err := tbl.Column("missing"); err == nil {
		t.Error("missing column lookup succeeded")
	}
}

func TestSortedIndex(t *testing.T) {
	m := &vector.Mem{Values: []string{"40", "7", "40", "100", "3"}}
	idx, err := BuildIndex(m)
	if err != nil {
		t.Fatal(err)
	}
	if idx.Len() != 5 {
		t.Fatalf("len = %d", idx.Len())
	}
	rows := idx.Lookup("40")
	if len(rows) != 2 || rows[0] != 0 || rows[1] != 2 {
		t.Errorf("Lookup(40) = %v", rows)
	}
	if rows := idx.Lookup("999"); len(rows) != 0 {
		t.Errorf("Lookup(999) = %v", rows)
	}
	// Numeric ordering: 3 < 7 < 40 < 100.
	if got := idx.Range("7", "40"); len(got) != 3 {
		t.Errorf("Range(7,40) = %v", got)
	}
	if got := idx.Range("", "7"); len(got) != 2 {
		t.Errorf("Range(,7) = %v", got)
	}
	if got := idx.Range("41", ""); len(got) != 1 || got[0] != 3 {
		t.Errorf("Range(41,) = %v", got)
	}
}

func TestIndexNestedLoopJoin(t *testing.T) {
	outer := &vector.Mem{Values: []string{"a", "b", "zz"}}
	inner := &vector.Mem{Values: []string{"b", "a", "b"}}
	idx, _ := BuildIndex(inner)
	var pairs []string
	err := IndexNestedLoopJoin(outer, []int64{0, 1, 2}, idx, func(o, i int64) error {
		pairs = append(pairs, fmt.Sprintf("%d-%d", o, i))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Join(pairs, " ") != "0-1 1-0 1-2" {
		t.Errorf("pairs = %v", pairs)
	}
}

func TestHashJoin(t *testing.T) {
	left := &vector.Mem{Values: []string{"x", "y", "x"}}
	right := &vector.Mem{Values: []string{"x", "z"}}
	var n int
	err := HashJoin(left, right, func(l, r int64) error { n++; return nil })
	if err != nil || n != 2 {
		t.Errorf("join pairs = %d (%v), want 2", n, err)
	}
}

const bibXML = `<bib>
  <book><publisher>SBP</publisher><author>RH</author><title>Curation</title></book>
  <book><publisher>SBP</publisher><author>RH</author><title>XML</title></book>
  <book><publisher>AW</publisher><author>SB</author><title>AXML</title></book>
  <article><author>BC</author><title>P2P</title></article>
  <article><author>RH</author><author>BC</author><title>XStore</title></article>
  <article><author>DD</author><author>RH</author><title>XPath</title></article>
</bib>`

func TestAssocSelectAndValues(t *testing.T) {
	syms := xmlmodel.NewSymbols()
	repo, err := vectorize.FromString(bibXML, syms)
	if err != nil {
		t.Fatal(err)
	}
	a := BuildAssoc(repo.Classes, repo.Vectors, syms)
	oids, err := a.SelectValues("/bib/book/publisher", func(v string) bool { return v == "SBP" })
	if err != nil {
		t.Fatal(err)
	}
	// publisher oids 0 and 1.
	if len(oids) != 2 || oids[0] != 0 || oids[1] != 1 {
		t.Fatalf("oids = %v", oids)
	}
	pubCls := repo.Classes.Resolve("/bib/book/publisher")
	bookCls := repo.Classes.Resolve("/bib/book")
	books := a.AncestorsAt(pubCls, bookCls, oids)
	if len(books) != 2 || books[0] != 0 || books[1] != 1 {
		t.Fatalf("books = %v", books)
	}
	titleCls := repo.Classes.Resolve("/bib/book/title")
	// Titles of the matching books via the title association.
	vals, err := a.Values(titleCls, books)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Join(vals, ",") != "Curation,XML" {
		t.Errorf("vals = %v", vals)
	}
}

func TestAssocReconstruct(t *testing.T) {
	syms := xmlmodel.NewSymbols()
	repo, err := vectorize.FromString(bibXML, syms)
	if err != nil {
		t.Fatal(err)
	}
	a := BuildAssoc(repo.Classes, repo.Vectors, syms)
	bookCls := repo.Classes.Resolve("/bib/book")
	n, err := a.Reconstruct(bookCls, 2)
	if err != nil {
		t.Fatal(err)
	}
	got := xmlmodel.TreeString(n, syms)
	// Children grouped by class: author, publisher, title sort order.
	for _, want := range []string{"<publisher>AW</publisher>", "<author>SB</author>", "<title>AXML</title>"} {
		if !strings.Contains(got, want) {
			t.Errorf("reconstruction %s missing %s", got, want)
		}
	}
}

func TestAssocParentMapping(t *testing.T) {
	syms := xmlmodel.NewSymbols()
	repo, _ := vectorize.FromString(bibXML, syms)
	a := BuildAssoc(repo.Classes, repo.Vectors, syms)
	authCls := repo.Classes.Resolve("/bib/article/author")
	// 5 article authors map to articles 0,1,1,2,2.
	want := []int64{0, 1, 1, 2, 2}
	for i, w := range want {
		if got := a.Parent(authCls, int64(i)); got != w {
			t.Errorf("Parent(auth,%d) = %d, want %d", i, got, w)
		}
	}
}

func TestRowTableGet(t *testing.T) {
	st := newStore(t)
	tbl, w, err := CreateRowTable(st, "g", []string{"id", "val"})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3000; i++ {
		if err := w.Append([]string{fmt.Sprint(i), strings.Repeat("x", 40)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	for _, rid := range []int64{0, 1, 999, 1500, 2999} {
		vals, err := tbl.Get(rid)
		if err != nil {
			t.Fatal(err)
		}
		if vals[0] != fmt.Sprint(rid) {
			t.Errorf("Get(%d) id = %s", rid, vals[0])
		}
	}
	if _, err := tbl.Get(3000); err == nil {
		t.Error("out-of-range Get succeeded")
	}
}

// BenchmarkRowVsColumnScan shows the vertical-partitioning I/O asymmetry
// the whole paper builds on: filtering on one of 24 columns costs a full
// record decode in the row store but a single-column scan in the column
// store.
func BenchmarkRowVsColumnScan(b *testing.B) {
	cols := make([]string, 24)
	for i := range cols {
		cols[i] = fmt.Sprintf("c%d", i)
	}
	vals := make([]string, len(cols))
	for i := range vals {
		vals[i] = strings.Repeat("v", 12)
	}
	const rows = 20000

	b.Run("rowstore", func(b *testing.B) {
		st := newStore(b)
		tbl, w, err := CreateRowTable(st, "t", cols)
		if err != nil {
			b.Fatal(err)
		}
		for i := 0; i < rows; i++ {
			vals[0] = fmt.Sprint(i % 100)
			if err := w.Append(vals); err != nil {
				b.Fatal(err)
			}
		}
		if err := w.Close(); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			n := 0
			err := tbl.Scan(func(_ int64, v []string) error {
				if v[0] == "42" {
					n++
				}
				return nil
			})
			if err != nil {
				b.Fatal(err)
			}
			if n != rows/100 {
				b.Fatalf("matches = %d", n)
			}
		}
	})

	b.Run("colstore", func(b *testing.B) {
		st := newStore(b)
		tbl, w, err := CreateColTable(st, "t", cols)
		if err != nil {
			b.Fatal(err)
		}
		for i := 0; i < rows; i++ {
			vals[0] = fmt.Sprint(i % 100)
			if err := w.Append(vals); err != nil {
				b.Fatal(err)
			}
		}
		if err := w.Close(); err != nil {
			b.Fatal(err)
		}
		col, err := tbl.Column("c0")
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			n := 0
			err := col.Scan(0, col.Len(), func(_ int64, v []byte) error {
				if string(v) == "42" {
					n++
				}
				return nil
			})
			if err != nil {
				b.Fatal(err)
			}
			if n != rows/100 {
				b.Fatalf("matches = %d", n)
			}
		}
	})
}
