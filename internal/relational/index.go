package relational

import (
	"sort"

	"vxml/internal/vector"
	"vxml/internal/xq"
)

// SortedIndex is a (value, rowID) index over one column, the stand-in for
// the tuned SQL Server index of the paper's SQ3. Built once at load time;
// lookups are binary searches.
type SortedIndex struct {
	vals []string
	rows []int64
}

// BuildIndex sorts the column's values.
func BuildIndex(col vector.Vector) (*SortedIndex, error) {
	idx := &SortedIndex{
		vals: make([]string, 0, col.Len()),
		rows: make([]int64, 0, col.Len()),
	}
	err := col.Scan(0, col.Len(), func(pos int64, val []byte) error {
		idx.vals = append(idx.vals, string(val))
		idx.rows = append(idx.rows, pos)
		return nil
	})
	if err != nil {
		return nil, err
	}
	order := make([]int, len(idx.vals))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return xq.CompareValues(idx.vals[order[a]], idx.vals[order[b]]) < 0
	})
	vals := make([]string, len(order))
	rows := make([]int64, len(order))
	for i, o := range order {
		vals[i], rows[i] = idx.vals[o], idx.rows[o]
	}
	idx.vals, idx.rows = vals, rows
	return idx, nil
}

// Len returns the number of indexed rows.
func (idx *SortedIndex) Len() int { return len(idx.vals) }

// Lookup returns the rowIDs whose value equals v.
func (idx *SortedIndex) Lookup(v string) []int64 {
	lo := sort.Search(len(idx.vals), func(i int) bool { return xq.CompareValues(idx.vals[i], v) >= 0 })
	var out []int64
	for i := lo; i < len(idx.vals) && xq.CompareValues(idx.vals[i], v) == 0; i++ {
		out = append(out, idx.rows[i])
	}
	return out
}

// Range returns the rowIDs with lo <= value <= hi (inclusive bounds; pass
// "" to leave a side unbounded).
func (idx *SortedIndex) Range(lo, hi string) []int64 {
	start := 0
	if lo != "" {
		start = sort.Search(len(idx.vals), func(i int) bool { return xq.CompareValues(idx.vals[i], lo) >= 0 })
	}
	var out []int64
	for i := start; i < len(idx.vals); i++ {
		if hi != "" && xq.CompareValues(idx.vals[i], hi) > 0 {
			break
		}
		out = append(out, idx.rows[i])
	}
	return out
}

// IndexNestedLoopJoin probes idx with each outer value, calling fn for
// every (outerRow, innerRow) match — the plan that wins the paper's SQ3
// when the outer predicate is highly selective.
func IndexNestedLoopJoin(outer vector.Vector, outerRows []int64, idx *SortedIndex, fn func(outerRow, innerRow int64) error) error {
	for _, or := range outerRows {
		v, err := vector.Get(outer, or)
		if err != nil {
			return err
		}
		for _, ir := range idx.Lookup(v) {
			if err := fn(or, ir); err != nil {
				return err
			}
		}
	}
	return nil
}

// HashJoin joins two columns on equality, calling fn per matching row
// pair (build on left, probe with right).
func HashJoin(left, right vector.Vector, fn func(lrow, rrow int64) error) error {
	build := make(map[string][]int64)
	err := left.Scan(0, left.Len(), func(pos int64, val []byte) error {
		build[string(val)] = append(build[string(val)], pos)
		return nil
	})
	if err != nil {
		return err
	}
	return right.Scan(0, right.Len(), func(rrow int64, val []byte) error {
		for _, lrow := range build[string(val)] {
			if err := fn(lrow, rrow); err != nil {
				return err
			}
		}
		return nil
	})
}
