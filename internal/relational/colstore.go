package relational

import (
	"fmt"

	"vxml/internal/storage"
	"vxml/internal/vector"
)

// ColTable is a vertically partitioned table: one paged value file per
// column. Scanning k of n columns costs k/n of the row-store I/O — the
// classic column-store win the paper generalizes to XML.
type ColTable struct {
	Name    string
	Columns []string
	cols    map[string]*vector.Paged
	rows    int64
}

// ColWriter appends records column-wise.
type ColWriter struct {
	t       *ColTable
	writers []*vector.Writer
	st      *storage.Store
}

// CreateColTable starts a new column table in the store.
func CreateColTable(st *storage.Store, name string, columns []string) (*ColTable, *ColWriter, error) {
	t := &ColTable{Name: name, Columns: columns, cols: make(map[string]*vector.Paged)}
	w := &ColWriter{t: t, st: st}
	for _, c := range columns {
		f, err := st.Open("rel/" + name + "." + c + ".col")
		if err != nil {
			return nil, nil, err
		}
		vw, err := vector.NewWriter(st.Pool(), f)
		if err != nil {
			return nil, nil, err
		}
		w.writers = append(w.writers, vw)
	}
	return t, w, nil
}

// Append adds one record.
func (w *ColWriter) Append(vals []string) error {
	if len(vals) != len(w.t.Columns) {
		return fmt.Errorf("relational: %s: %d values for %d columns", w.t.Name, len(vals), len(w.t.Columns))
	}
	for i, v := range vals {
		if err := w.writers[i].AppendString(v); err != nil {
			return err
		}
	}
	w.t.rows++
	return nil
}

// Close finalizes all column files and opens them for reading.
func (w *ColWriter) Close() error {
	for i, vw := range w.writers {
		if err := vw.Close(); err != nil {
			return err
		}
		f, err := w.st.Open("rel/" + w.t.Name + "." + w.t.Columns[i] + ".col")
		if err != nil {
			return err
		}
		p, err := vector.OpenPaged(w.st.Pool(), f)
		if err != nil {
			return err
		}
		w.t.cols[w.t.Columns[i]] = p
	}
	return nil
}

// NumRows returns the record count.
func (t *ColTable) NumRows() int64 { return t.rows }

// Column returns the paged vector of one column.
func (t *ColTable) Column(name string) (*vector.Paged, error) {
	c, ok := t.cols[name]
	if !ok {
		return nil, fmt.Errorf("relational: %s has no column %q", t.Name, name)
	}
	return c, nil
}

// ScanWhere scans predCol once, and for matching rows fetches the selected
// columns positionally — touching only what the query needs.
func (t *ColTable) ScanWhere(predCol string, pred func(string) bool, select_ []string, fn func(rowID int64, vals []string) error) error {
	pc, err := t.Column(predCol)
	if err != nil {
		return err
	}
	sel := make([]*vector.Paged, len(select_))
	for i, c := range select_ {
		if sel[i], err = t.Column(c); err != nil {
			return err
		}
	}
	vals := make([]string, len(select_))
	return pc.Scan(0, pc.Len(), func(rowID int64, val []byte) error {
		if !pred(string(val)) {
			return nil
		}
		for i, c := range sel {
			v, err := vector.Get(c, rowID)
			if err != nil {
				return err
			}
			vals[i] = v
		}
		return fn(rowID, vals)
	})
}
