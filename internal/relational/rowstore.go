// Package relational is a miniature relational engine providing the
// comparison systems of the paper's §5 evaluation on the same storage
// substrate as the vectorized store:
//
//   - RowTable — a row store (heap file of complete records), standing in
//     for the SQL Server setup of [17]: every scan reads every column.
//   - ColTable — a column store (one paged file per column), standing in
//     for vertically partitioned relational storage.
//   - SortedIndex + IndexNestedLoopJoin — the tuned-index configuration
//     that wins the paper's SQ3.
//   - Assoc — MonetDB's association-based ("binary relation per path")
//     XML mapping [23, 24], including the dataguide shortcut that turns a
//     value filter into a single binary-table scan and the reconstruction
//     penalty for subtree retrieval.
package relational

import (
	"encoding/binary"
	"fmt"

	"vxml/internal/storage"
)

// RowTable is a heap file of records; each record stores every column's
// value. Reading any column costs reading them all — the row-store trade.
type RowTable struct {
	Name    string
	Columns []string
	pool    *storage.BufferPool
	file    *storage.File
	rows    int64
	// pageFirst[p] is the rowID of the first record on page p, enabling
	// point fetches (index plans need them).
	pageFirst []int64
}

// CreateRowTable starts a new row table in the store.
func CreateRowTable(st *storage.Store, name string, columns []string) (*RowTable, *RowWriter, error) {
	f, err := st.Open("rel/" + name + ".rows")
	if err != nil {
		return nil, nil, err
	}
	w, err := newRecordWriter(st.Pool(), f)
	if err != nil {
		return nil, nil, err
	}
	t := &RowTable{Name: name, Columns: columns, pool: st.Pool(), file: f}
	return t, &RowWriter{t: t, w: w}, nil
}

// RowWriter appends records to a row table.
type RowWriter struct {
	t   *RowTable
	w   *recordWriter
	buf []byte
}

// Append adds one record; vals must match the table's column count.
func (rw *RowWriter) Append(vals []string) error {
	if len(vals) != len(rw.t.Columns) {
		return fmt.Errorf("relational: %s: %d values for %d columns", rw.t.Name, len(vals), len(rw.t.Columns))
	}
	rw.buf = rw.buf[:0]
	for _, v := range vals {
		rw.buf = binary.AppendUvarint(rw.buf, uint64(len(v)))
		rw.buf = append(rw.buf, v...)
	}
	newPage, err := rw.w.append(rw.buf)
	if err != nil {
		return err
	}
	if newPage {
		rw.t.pageFirst = append(rw.t.pageFirst, rw.t.rows)
	}
	rw.t.rows++
	return nil
}

// Get fetches one record by rowID (a point read through the page
// directory — what index-nested-loop plans issue).
func (t *RowTable) Get(rowID int64) ([]string, error) {
	if rowID < 0 || rowID >= t.rows {
		return nil, fmt.Errorf("relational: %s: row %d out of range", t.Name, rowID)
	}
	// Binary search the page whose first row is <= rowID.
	lo, hi := 0, len(t.pageFirst)-1
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if t.pageFirst[mid] <= rowID {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	fr, err := t.pool.Get(t.file, int64(lo))
	if err != nil {
		return nil, err
	}
	defer t.pool.Unpin(fr, false)
	nrecs := int(binary.LittleEndian.Uint16(fr.Data[0:2]))
	off := recHeader
	rid := t.pageFirst[lo]
	for i := 0; i < nrecs; i++ {
		ln, sz := binary.Uvarint(fr.Data[off:])
		if sz <= 0 {
			return nil, fmt.Errorf("relational: %s: corrupt page %d", t.Name, lo)
		}
		off += sz
		if rid == rowID {
			rec := fr.Data[off : off+int(ln)]
			vals := make([]string, len(t.Columns))
			p := 0
			for c := range vals {
				vl, vsz := binary.Uvarint(rec[p:])
				if vsz <= 0 {
					return nil, fmt.Errorf("relational: %s: corrupt record %d", t.Name, rowID)
				}
				p += vsz
				vals[c] = string(rec[p : p+int(vl)])
				p += int(vl)
			}
			return vals, nil
		}
		off += int(ln)
		rid++
	}
	return nil, fmt.Errorf("relational: %s: row %d not found on page %d", t.Name, rowID, lo)
}

// Close finalizes the table.
func (rw *RowWriter) Close() error { return rw.w.close() }

// NumRows returns the record count.
func (t *RowTable) NumRows() int64 { return t.rows }

// Scan decodes every record (all columns — the row-store cost model) and
// calls fn with the values; the slice is reused between calls.
func (t *RowTable) Scan(fn func(rowID int64, vals []string) error) error {
	vals := make([]string, len(t.Columns))
	return t.scanRecords(func(rowID int64, rec []byte) error {
		off := 0
		for i := range vals {
			ln, sz := binary.Uvarint(rec[off:])
			if sz <= 0 {
				return fmt.Errorf("relational: %s: corrupt record %d", t.Name, rowID)
			}
			off += sz
			vals[i] = string(rec[off : off+int(ln)])
			off += int(ln)
		}
		return fn(rowID, vals)
	})
}

func (t *RowTable) scanRecords(fn func(rowID int64, rec []byte) error) error {
	r := &recordReader{pool: t.pool, file: t.file}
	return r.scan(fn)
}

// Col returns the index of a column name, or -1.
func (t *RowTable) Col(name string) int {
	for i, c := range t.Columns {
		if c == name {
			return i
		}
	}
	return -1
}

// recordWriter/recordReader implement a heap file of length-prefixed
// records over 8 KiB pages (header: u16 count, u16 used). Records do not
// span pages.
type recordWriter struct {
	pool  *storage.BufferPool
	file  *storage.File
	frame *storage.Frame
	used  int
	nrecs int
}

const recHeader = 4
const recPayload = storage.PageDataSize - recHeader

func newRecordWriter(pool *storage.BufferPool, file *storage.File) (*recordWriter, error) {
	if file.NumPages() != 0 {
		return nil, fmt.Errorf("relational: writer on non-empty file %s", file.Path())
	}
	return &recordWriter{pool: pool, file: file}, nil
}

// append stores one record, reporting whether a new page was started.
func (w *recordWriter) append(rec []byte) (newPage bool, err error) {
	var lenBuf [binary.MaxVarintLen32]byte
	ln := binary.PutUvarint(lenBuf[:], uint64(len(rec)))
	need := ln + len(rec)
	if need > recPayload {
		return false, fmt.Errorf("relational: record of %d bytes exceeds page payload", len(rec))
	}
	if w.frame == nil || w.used+need > recPayload {
		if err := w.flushPage(); err != nil {
			return false, err
		}
		fr, _, err := w.pool.Alloc(w.file)
		if err != nil {
			return false, err
		}
		w.frame, w.used, w.nrecs = fr, 0, 0
		newPage = true
	}
	off := recHeader + w.used
	copy(w.frame.Data[off:], lenBuf[:ln])
	copy(w.frame.Data[off+ln:], rec)
	w.used += need
	w.nrecs++
	return newPage, nil
}

func (w *recordWriter) flushPage() error {
	if w.frame == nil {
		return nil
	}
	binary.LittleEndian.PutUint16(w.frame.Data[0:2], uint16(w.nrecs))
	binary.LittleEndian.PutUint16(w.frame.Data[2:4], uint16(w.used))
	w.pool.Unpin(w.frame, true)
	w.frame = nil
	return nil
}

func (w *recordWriter) close() error { return w.flushPage() }

type recordReader struct {
	pool *storage.BufferPool
	file *storage.File
}

func (r *recordReader) scan(fn func(rowID int64, rec []byte) error) error {
	rowID := int64(0)
	for pg := int64(0); pg < r.file.NumPages(); pg++ {
		fr, err := r.pool.Get(r.file, pg)
		if err != nil {
			return err
		}
		nrecs := int(binary.LittleEndian.Uint16(fr.Data[0:2]))
		off := recHeader
		for i := 0; i < nrecs; i++ {
			ln, sz := binary.Uvarint(fr.Data[off:])
			if sz <= 0 {
				r.pool.Unpin(fr, false)
				return fmt.Errorf("relational: corrupt page %d", pg)
			}
			off += sz
			if err := fn(rowID, fr.Data[off:off+int(ln)]); err != nil {
				r.pool.Unpin(fr, false)
				return err
			}
			off += int(ln)
			rowID++
		}
		r.pool.Unpin(fr, false)
	}
	return nil
}
