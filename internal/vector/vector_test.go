package vector

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"vxml/internal/storage"
)

func newPool(t testing.TB, pages int) (*storage.Store, *storage.BufferPool) {
	t.Helper()
	s, err := storage.OpenStore(t.TempDir(), pages)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s, s.Pool()
}

func writeVector(t testing.TB, store *storage.Store, name string, vals []string) *Paged {
	t.Helper()
	f, err := store.Open(name)
	if err != nil {
		t.Fatal(err)
	}
	w, err := NewWriter(store.Pool(), f)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range vals {
		if err := w.AppendString(v); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	p, err := OpenPaged(store.Pool(), f)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestMemVector(t *testing.T) {
	m := &Mem{}
	m.Append("a")
	m.Append("b")
	if m.Len() != 2 {
		t.Fatalf("Len = %d", m.Len())
	}
	got, err := All(m)
	if err != nil || strings.Join(got, ",") != "a,b" {
		t.Errorf("All = %v, %v", got, err)
	}
	if err := m.Scan(1, 2, func(int64, []byte) error { return nil }); err == nil {
		t.Error("out-of-range scan succeeded")
	}
}

func TestPagedRoundTrip(t *testing.T) {
	store, _ := newPool(t, 16)
	vals := []string{"SBP", "SBP", "AW", "", "a longer value with spaces", "ünïcode"}
	p := writeVector(t, store, "v", vals)
	if p.Len() != int64(len(vals)) {
		t.Fatalf("Len = %d, want %d", p.Len(), len(vals))
	}
	got, err := All(p)
	if err != nil {
		t.Fatal(err)
	}
	for i := range vals {
		if got[i] != vals[i] {
			t.Errorf("val[%d] = %q, want %q", i, got[i], vals[i])
		}
	}
}

func TestPagedMultiPage(t *testing.T) {
	store, _ := newPool(t, 4) // smaller than the file: forces eviction + re-read
	var vals []string
	for i := 0; i < 5000; i++ {
		vals = append(vals, fmt.Sprintf("value-%06d", i))
	}
	p := writeVector(t, store, "v", vals)
	if p.file.NumPages() < 5 {
		t.Fatalf("expected multiple pages, got %d", p.file.NumPages())
	}
	// Positional scans from arbitrary offsets.
	for _, start := range []int64{0, 1, 499, 2500, 4999} {
		var got string
		if err := p.Scan(start, 1, func(pos int64, val []byte) error {
			if pos != start {
				t.Errorf("pos = %d, want %d", pos, start)
			}
			got = string(val)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		if got != vals[start] {
			t.Errorf("val[%d] = %q, want %q", start, got, vals[start])
		}
	}
	// Range spanning pages.
	n := 0
	if err := p.Scan(1000, 2000, func(pos int64, val []byte) error {
		if string(val) != vals[pos] {
			return fmt.Errorf("val[%d] = %q", pos, val)
		}
		n++
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if n != 2000 {
		t.Errorf("scanned %d values, want 2000", n)
	}
}

func TestPagedScanBounds(t *testing.T) {
	store, _ := newPool(t, 8)
	p := writeVector(t, store, "v", []string{"a", "b"})
	if err := p.Scan(1, 2, func(int64, []byte) error { return nil }); err == nil {
		t.Error("out-of-range scan succeeded")
	}
	if err := p.Scan(2, 0, func(int64, []byte) error { return nil }); err != nil {
		t.Errorf("empty scan at end failed: %v", err)
	}
}

func TestWriterRejectsOversize(t *testing.T) {
	store, _ := newPool(t, 8)
	f, _ := store.Open("v")
	w, err := NewWriter(store.Pool(), f)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(make([]byte, MaxValue+1)); err == nil {
		t.Error("oversize append succeeded")
	}
}

func TestWriterRequiresEmptyFile(t *testing.T) {
	store, _ := newPool(t, 8)
	writeVector(t, store, "v", []string{"a"})
	f, _ := store.Open("v")
	if _, err := NewWriter(store.Pool(), f); err == nil {
		t.Error("NewWriter on non-empty file succeeded")
	}
}

func TestOpenPagedBadMagic(t *testing.T) {
	store, pool := newPool(t, 8)
	f, _ := store.Open("junk")
	fr, _, err := pool.Alloc(f)
	if err != nil {
		t.Fatal(err)
	}
	copy(fr.Data, []byte("XXXX"))
	pool.Unpin(fr, true)
	if _, err := OpenPaged(pool, f); err == nil {
		t.Error("OpenPaged with bad magic succeeded")
	}
}

func TestDiskSetRoundTrip(t *testing.T) {
	dir := t.TempDir()
	store, err := storage.OpenStore(dir, 32)
	if err != nil {
		t.Fatal(err)
	}
	set := CreateDiskSet(store)
	data := map[string][]string{
		"/bib/book/title":     {"Curation", "XML", "AXML"},
		"/bib/article/author": {"BC", "RH", "BC", "DD", "RH"},
	}
	for name, vals := range data {
		w, err := set.NewWriter(name)
		if err != nil {
			t.Fatal(err)
		}
		for _, v := range vals {
			if err := w.AppendString(v); err != nil {
				t.Fatal(err)
			}
		}
		if err := set.CloseVector(name, w); err != nil {
			t.Fatal(err)
		}
	}
	if err := set.Save(); err != nil {
		t.Fatal(err)
	}
	store.Close()

	store2, err := storage.OpenStore(dir, 32)
	if err != nil {
		t.Fatal(err)
	}
	defer store2.Close()
	set2, err := OpenDiskSet(store2)
	if err != nil {
		t.Fatal(err)
	}
	if got := set2.Names(); len(got) != 2 || got[0] != "/bib/article/author" {
		t.Fatalf("Names = %v", got)
	}
	for name, vals := range data {
		v, err := set2.Vector(name)
		if err != nil {
			t.Fatal(err)
		}
		got, err := All(v)
		if err != nil {
			t.Fatal(err)
		}
		if strings.Join(got, ",") != strings.Join(vals, ",") {
			t.Errorf("%s = %v, want %v", name, got, vals)
		}
		if c, ok := set2.Count(name); !ok || c != int64(len(vals)) {
			t.Errorf("Count(%s) = %d,%v", name, c, ok)
		}
	}
	if set2.CatalogBytes() == 0 {
		t.Error("CatalogBytes = 0")
	}
	if _, err := set2.Vector("/missing"); err == nil {
		t.Error("missing vector open succeeded")
	}
}

func TestDiskSetDuplicateName(t *testing.T) {
	store, _ := newPool(t, 8)
	set := CreateDiskSet(store)
	if _, err := set.NewWriter("/v"); err != nil {
		t.Fatal(err)
	}
	if _, err := set.NewWriter("/v"); err == nil {
		t.Error("duplicate NewWriter succeeded")
	}
}

func TestTotalValuesAndBytes(t *testing.T) {
	s := NewMemSet()
	s.Add("/a").Append("xy")
	s.Add("/a").Append("z")
	s.Add("/b").Append("1234")
	n, err := TotalValues(s)
	if err != nil || n != 3 {
		t.Errorf("TotalValues = %d, %v", n, err)
	}
	b, err := TotalBytes(s)
	if err != nil || b != 7 {
		t.Errorf("TotalBytes = %d, %v", b, err)
	}
}

// TestPropertyPagedMatchesMem: a paged vector behaves exactly like the
// in-memory reference for random values and random range scans.
func TestPropertyPagedMatchesMem(t *testing.T) {
	store, _ := newPool(t, 8)
	seq := 0
	f := func(seed int64) bool {
		seq++
		r := rand.New(rand.NewSource(seed))
		n := r.Intn(500)
		vals := make([]string, n)
		for i := range vals {
			vals[i] = strings.Repeat("x", r.Intn(100)) + fmt.Sprint(i)
		}
		p := writeVector(t, store, fmt.Sprintf("pv%d", seq), vals)
		m := &Mem{Values: vals}
		for trial := 0; trial < 10; trial++ {
			start := int64(0)
			if n > 0 {
				start = int64(r.Intn(n))
			}
			cnt := int64(0)
			if rem := int64(n) - start; rem > 0 {
				cnt = int64(r.Int63n(rem))
			}
			var a, b []string
			p.Scan(start, cnt, func(_ int64, v []byte) error { a = append(a, string(v)); return nil })
			m.Scan(start, cnt, func(_ int64, v []byte) error { b = append(b, string(v)); return nil })
			if strings.Join(a, "\x00") != strings.Join(b, "\x00") {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func BenchmarkPagedSequentialScan(b *testing.B) {
	store, _ := newPool(b, 256)
	var vals []string
	for i := 0; i < 100000; i++ {
		vals = append(vals, fmt.Sprintf("v%08d", i))
	}
	p := writeVector(b, store, "bench", vals)
	b.SetBytes(int64(p.ValueBytes()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var total int
		err := p.Scan(0, p.Len(), func(_ int64, val []byte) error {
			total += len(val)
			return nil
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPagedPointReads(b *testing.B) {
	store, _ := newPool(b, 256)
	var vals []string
	for i := 0; i < 100000; i++ {
		vals = append(vals, fmt.Sprintf("v%08d", i))
	}
	p := writeVector(b, store, "bench", vals)
	r := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pos := int64(r.Intn(100000))
		if _, err := Get(p, pos); err != nil {
			b.Fatal(err)
		}
	}
}
