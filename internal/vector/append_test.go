package vector

import (
	"encoding/binary"
	"fmt"
	"strings"
	"testing"

	"vxml/internal/storage"
)

// scanAll reads every value of v as strings.
func scanAll(t *testing.T, v Vector) []string {
	t.Helper()
	out, err := All(v)
	if err != nil {
		t.Fatalf("scan all: %v", err)
	}
	return out
}

// TestAppendResumeExactlyFullPage resumes a writer onto a last page with
// zero free payload bytes: the first new value must go to a fresh page,
// and positional reads must stay correct across the boundary.
func TestAppendResumeExactlyFullPage(t *testing.T) {
	store, pool := newPool(t, 64)
	f, err := store.Open("v")
	if err != nil {
		t.Fatal(err)
	}
	w, err := NewWriter(pool, f)
	if err != nil {
		t.Fatal(err)
	}
	// 81 values of 99 bytes (1-byte length prefix each) plus one of 75
	// bytes fill the 8176-byte payload to the last byte.
	var want []string
	for i := 0; i < 81; i++ {
		want = append(want, strings.Repeat("x", 99))
	}
	want = append(want, strings.Repeat("y", 75))
	for _, v := range want {
		if err := w.AppendString(v); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// Verify the last data page is exactly full.
	fr, err := pool.Get(f, f.NumPages()-1)
	if err != nil {
		t.Fatal(err)
	}
	used := int(binary.LittleEndian.Uint16(fr.Data[10:12]))
	pool.Unpin(fr, false)
	if used != payload {
		t.Fatalf("last page used = %d, want exactly %d; adjust the test values", used, payload)
	}

	w2, err := OpenAppendWriter(pool, f, int64(len(want)))
	if err != nil {
		t.Fatal(err)
	}
	if err := w2.AppendString("resumed"); err != nil {
		t.Fatal(err)
	}
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}
	p, err := OpenPaged(pool, f)
	if err != nil {
		t.Fatal(err)
	}
	got := scanAll(t, p)
	want = append(want, "resumed")
	if len(got) != len(want) {
		t.Fatalf("count = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("value %d mismatch (len %d vs %d)", i, len(got[i]), len(want[i]))
		}
	}
}

// TestAppendResumeZeroValues re-opens a vector for append, writes nothing,
// and Closes again: the meta page must be unchanged and the vector fully
// readable.
func TestAppendResumeZeroValues(t *testing.T) {
	store, pool := newPool(t, 64)
	f, err := store.Open("v")
	if err != nil {
		t.Fatal(err)
	}
	vals := []string{"one", "two", "three"}
	w, err := NewWriter(pool, f)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range vals {
		if err := w.AppendString(v); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 2; round++ {
		w2, err := OpenAppendWriter(pool, f, int64(len(vals)))
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if w2.Count() != int64(len(vals)) {
			t.Fatalf("round %d: resumed count = %d, want %d", round, w2.Count(), len(vals))
		}
		if err := w2.Close(); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
	}
	p, err := OpenPaged(pool, f)
	if err != nil {
		t.Fatal(err)
	}
	if got := scanAll(t, p); strings.Join(got, ",") != strings.Join(vals, ",") {
		t.Errorf("values = %v, want %v", got, vals)
	}
	if p.ValueBytes() != 11 {
		t.Errorf("ValueBytes = %d, want 11", p.ValueBytes())
	}
}

// staleMeta rewrites the meta page of f to claim oldCount/oldBytes,
// simulating a crash after data pages were written but before Close
// refreshed the meta page.
func staleMeta(t *testing.T, pool *storage.BufferPool, f *storage.File, oldCount, oldBytes int64) {
	t.Helper()
	fr, err := pool.Get(f, 0)
	if err != nil {
		t.Fatal(err)
	}
	binary.LittleEndian.PutUint64(fr.Data[4:12], uint64(oldCount))
	binary.LittleEndian.PutUint64(fr.Data[12:20], uint64(oldBytes))
	pool.Unpin(fr, true)
	if err := pool.Flush(); err != nil {
		t.Fatal(err)
	}
}

// TestAppendResumeStaleMeta reopens vectors whose meta page disagrees
// with the committed count in either direction — lagging (crash before
// Close) or running ahead (crash after the page flush, before the catalog
// commit). Both recover by recounting from the data pages; only a
// committed count beyond what the data pages hold is corruption.
func TestAppendResumeStaleMeta(t *testing.T) {
	store, pool := newPool(t, 64)
	f, err := store.Open("v")
	if err != nil {
		t.Fatal(err)
	}
	w, err := NewWriter(pool, f)
	if err != nil {
		t.Fatal(err)
	}
	var vals []string
	var nbytes int64
	for i := 0; i < 5000; i++ { // several pages
		v := fmt.Sprintf("value-%04d", i)
		vals = append(vals, v)
		nbytes += int64(len(v))
		if err := w.AppendString(v); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	// Meta behind the data pages (crash before Close): recoverable.
	staleCount, staleBytes := int64(100), int64(10*100)
	staleMeta(t, pool, f, staleCount, staleBytes)
	w2, err := OpenAppendWriter(pool, f, int64(len(vals)))
	if err != nil {
		t.Fatalf("reopen with stale meta: %v", err)
	}
	if w2.Count() != int64(len(vals)) {
		t.Errorf("recovered count = %d, want %d", w2.Count(), len(vals))
	}
	if w2.ValueBytes() != nbytes {
		t.Errorf("recovered bytes = %d, want %d", w2.ValueBytes(), nbytes)
	}
	if err := w2.AppendString("after-recovery"); err != nil {
		t.Fatal(err)
	}
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}
	p, err := OpenPaged(pool, f)
	if err != nil {
		t.Fatal(err)
	}
	got := scanAll(t, p)
	if len(got) != len(vals)+1 || got[len(got)-1] != "after-recovery" {
		t.Fatalf("after recovery: %d values, last %q", len(got), got[len(got)-1])
	}

	// Meta page ahead of the committed count (crash after the page flush,
	// before the catalog commit): recoverable — the byte total is recounted
	// from the data pages.
	staleMeta(t, pool, f, int64(len(got))+1000, nbytes+100)
	w3, err := OpenAppendWriter(pool, f, int64(len(got)))
	if err != nil {
		t.Fatalf("reopen with meta ahead: %v", err)
	}
	if w3.Count() != int64(len(got)) {
		t.Errorf("recovered count = %d, want %d", w3.Count(), len(got))
	}
	if w3.ValueBytes() != nbytes+int64(len("after-recovery")) {
		t.Errorf("recounted bytes = %d, want %d", w3.ValueBytes(), nbytes+int64(len("after-recovery")))
	}
	if err := w3.Close(); err != nil {
		t.Fatal(err)
	}

	// A committed count beyond what the data pages hold is lost data.
	if _, err := OpenAppendWriter(pool, f, int64(len(got))+1000); err == nil {
		t.Error("reopen with committed count beyond data pages succeeded")
	}
}

// TestAppendCompressedStaleMeta: the compressed format detects a stale
// meta page and refuses (recovery requires a rebuild).
func TestAppendCompressedStaleMeta(t *testing.T) {
	store, pool := newPool(t, 64)
	f, err := store.Open("v")
	if err != nil {
		t.Fatal(err)
	}
	w, err := NewCompressedWriter(pool, f)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5000; i++ {
		if err := w.AppendString(fmt.Sprintf("value-%04d", i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	staleMeta(t, pool, f, 100, 1000)
	if _, err := OpenAppendCompressed(pool, f, 5000); err == nil {
		t.Error("compressed reopen with stale meta succeeded")
	}
}
