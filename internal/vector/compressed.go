package vector

import (
	"bytes"
	"compress/flate"
	"context"
	"encoding/binary"
	"fmt"
	"io"

	"vxml/internal/obs"
	"vxml/internal/storage"
)

// Compressed vector files are the §6 extension ("we can incorporate
// limited vector compression as suggested in [3] to further reduce I/O
// costs"): values are packed into page-sized batches and each batch is
// DEFLATE-compressed independently, so positional access still touches
// O(log pages) pages and decompression happens one page at a time during
// scans — the query processor never inflates more than it reads.
//
// Layout: page 0 is the meta page (magic "VXC2", u64 count, u64 raw value
// bytes). Each data page holds one batch: u64 firstIdx, u16 record count,
// u16 payload length, u8 flag (0 = stored raw when DEFLATE would not
// shrink it, 1 = DEFLATE), then the payload — the same uvarint-length
// record packing as the uncompressed format, compressed as a unit. The
// payload is bounded by storage.PageDataSize (the storage layer keeps a
// CRC32C trailer in the last 4 bytes of every page); "VXC1" predates the
// trailer and is rejected.

const (
	compMagic   = "VXC2"
	compHeader  = 13
	compPayload = storage.PageDataSize - compHeader
	// compBatch is the uncompressed batch size target; recursive splitting
	// at flush time right-sizes chunks to the data's compressibility.
	compBatch = 4 * compPayload
)

// CompressedWriter appends values to a compressed vector file.
type CompressedWriter struct {
	pool    *storage.BufferPool
	file    *storage.File
	buf     bytes.Buffer // uncompressed batch being assembled
	nrecs   int
	first   int64 // index of first record in buf
	count   int64
	bytes   int64
	scratch bytes.Buffer
	err     error

	// page header values for the chunk being written by emitChunk.
	firstOut int64
	nrecsOut int
}

// NewCompressedWriter starts a fresh compressed vector in file.
func NewCompressedWriter(pool *storage.BufferPool, file *storage.File) (*CompressedWriter, error) {
	if file.NumPages() != 0 {
		return nil, fmt.Errorf("vector: NewCompressedWriter on non-empty file %s", file.Path())
	}
	fr, _, err := pool.Alloc(file)
	if err != nil {
		return nil, err
	}
	pool.Unpin(fr, true)
	return &CompressedWriter{pool: pool, file: file}, nil
}

// Append adds one value at the next position.
func (w *CompressedWriter) Append(val []byte) error {
	if w.err != nil {
		return w.err
	}
	if len(val) > MaxValue {
		w.err = fmt.Errorf("vector: value of %d bytes exceeds max %d", len(val), MaxValue)
		return w.err
	}
	var lenBuf [binary.MaxVarintLen32]byte
	n := binary.PutUvarint(lenBuf[:], uint64(len(val)))
	w.buf.Write(lenBuf[:n])
	w.buf.Write(val)
	w.nrecs++
	w.count++
	w.bytes += int64(len(val))
	if w.buf.Len() >= compBatch {
		return w.flushBatch()
	}
	return nil
}

// AppendString adds one string value.
func (w *CompressedWriter) AppendString(val string) error { return w.Append([]byte(val)) }

// flushBatch emits the buffered records as one or more pages: a chunk is
// DEFLATE-compressed and written whole when the result fits a page;
// otherwise it is split at a record boundary near the middle and each
// half handled recursively, so pages pack as much raw data as the data's
// actual compressibility allows (raw storage is the final fallback for
// incompressible page-sized chunks).
func (w *CompressedWriter) flushBatch() error {
	if w.nrecs == 0 {
		return nil
	}
	data := w.buf.Bytes()
	if err := w.emitChunk(data, w.nrecs, w.first); err != nil {
		return err
	}
	w.first = w.count
	w.nrecs = 0
	w.buf.Reset()
	return nil
}

func (w *CompressedWriter) emitChunk(data []byte, recs int, first int64) error {
	w.scratch.Reset()
	fw, err := flate.NewWriter(&w.scratch, flate.BestSpeed)
	if err != nil {
		w.err = err
		return err
	}
	if _, err := fw.Write(data); err != nil {
		w.err = err
		return err
	}
	if err := fw.Close(); err != nil {
		w.err = err
		return err
	}
	payload, flag := w.scratch.Bytes(), byte(1)
	if len(payload) >= len(data) && len(data) <= compPayload {
		payload, flag = data, 0 // incompressible but fits raw
	}
	if len(payload) <= compPayload {
		w.firstOut, w.nrecsOut = first, recs
		return w.writePage(payload, flag)
	}
	if recs == 1 {
		w.err = fmt.Errorf("vector: single record of %d bytes does not fit a page", len(data))
		return w.err
	}
	// Split near the middle at a record boundary.
	half := recs / 2
	off := 0
	for i := 0; i < half; i++ {
		ln, n := binary.Uvarint(data[off:])
		off += n + int(ln)
	}
	if err := w.emitChunk(data[:off], half, first); err != nil {
		return err
	}
	return w.emitChunk(data[off:], recs-half, first+int64(half))
}

func (w *CompressedWriter) writePage(payload []byte, flag byte) error {
	fr, _, err := w.pool.Alloc(w.file)
	if err != nil {
		w.err = err
		return err
	}
	binary.LittleEndian.PutUint64(fr.Data[0:8], uint64(w.firstOut))
	binary.LittleEndian.PutUint16(fr.Data[8:10], uint16(w.nrecsOut))
	binary.LittleEndian.PutUint16(fr.Data[10:12], uint16(len(payload)))
	fr.Data[12] = flag
	copy(fr.Data[compHeader:], payload)
	w.pool.Unpin(fr, true)
	return nil
}

// Count returns the number of values appended so far.
func (w *CompressedWriter) Count() int64 { return w.count }

// ValueBytes returns the raw byte size of all appended values.
func (w *CompressedWriter) ValueBytes() int64 { return w.bytes }

// Close flushes the final batch and writes the meta page.
func (w *CompressedWriter) Close() error {
	if w.err != nil {
		return w.err
	}
	if err := w.flushBatch(); err != nil {
		return err
	}
	fr, err := w.pool.Get(w.file, 0)
	if err != nil {
		return err
	}
	copy(fr.Data[0:4], compMagic)
	binary.LittleEndian.PutUint64(fr.Data[4:12], uint64(w.count))
	binary.LittleEndian.PutUint64(fr.Data[12:20], uint64(w.bytes))
	w.pool.Unpin(fr, true)
	w.err = fmt.Errorf("vector: writer closed")
	return nil
}

// CompressedPaged reads a compressed vector file. The struct itself holds
// no scan state — each Scan inflates pages into its own local cache — so
// one CompressedPaged may serve any number of concurrent Scans.
type CompressedPaged struct {
	pool  *storage.BufferPool
	file  *storage.File
	count int64
	bytes int64
	meter *obs.TaskMeter  // nil on shared readers; set on Metered views
	ctx   context.Context // nil on shared readers; set on WithContext views
}

// Metered implements Meterable: the returned view charges page faults to
// m. The receiver is unchanged, so the shared reader stays unattributed.
func (p *CompressedPaged) Metered(m *obs.TaskMeter) Vector {
	v := *p
	v.meter = m
	return &v
}

// WithContext implements Contextual: the returned view's page reads honor
// ctx during transient-read retry backoff.
func (p *CompressedPaged) WithContext(ctx context.Context) Vector {
	v := *p
	v.ctx = ctx
	return &v
}

func (p *CompressedPaged) context() context.Context {
	if p.ctx != nil {
		return p.ctx
	}
	return context.Background()
}

// OpenCompressed opens a finalized compressed vector file.
func OpenCompressed(pool *storage.BufferPool, file *storage.File) (*CompressedPaged, error) {
	return OpenCompressedCtx(context.Background(), pool, file, nil)
}

// OpenCompressedCtx is OpenCompressed with request attribution, mirroring
// OpenPagedCtx: the meta-page read charges m and retries trace on ctx.
func OpenCompressedCtx(ctx context.Context, pool *storage.BufferPool, file *storage.File, m *obs.TaskMeter) (*CompressedPaged, error) {
	fr, err := pool.GetMeteredCtx(ctx, file, 0, m)
	if err != nil {
		return nil, err
	}
	defer pool.Unpin(fr, false)
	if string(fr.Data[0:4]) != compMagic {
		return nil, fmt.Errorf("vector: %s: bad compressed magic %q (want %q): %w", file.Path(), fr.Data[0:4], compMagic, storage.ErrCorrupt)
	}
	return &CompressedPaged{
		pool:  pool,
		file:  file,
		count: int64(binary.LittleEndian.Uint64(fr.Data[4:12])),
		bytes: int64(binary.LittleEndian.Uint64(fr.Data[12:20])),
	}, nil
}

// Len implements Vector.
func (p *CompressedPaged) Len() int64 { return p.count }

// ValueBytes returns the raw value bytes (before compression).
func (p *CompressedPaged) ValueBytes() int64 { return p.bytes }

// inflateCache is one Scan's local page cache: keeping it per call (not on
// the CompressedPaged) makes concurrent scans of one vector safe, and a
// sequential scan still inflates each page once.
type inflateCache struct {
	page int64
	data []byte
	idx  int64
	n    int
}

// Scan implements Vector.
func (p *CompressedPaged) Scan(start, n int64, fn func(pos int64, val []byte) error) error {
	if n == 0 {
		return nil
	}
	if start < 0 || start+n > p.count {
		return fmt.Errorf("vector: scan [%d,%d) out of range 0..%d", start, start+n, p.count)
	}
	pageNo, err := p.findPage(start)
	if err != nil {
		return err
	}
	cache := inflateCache{page: -1}
	end := start + n
	pos := int64(-1)
	for pageNo < p.file.NumPages() {
		if err := p.loadPage(&cache, pageNo); err != nil {
			return err
		}
		pos = cache.idx
		off := 0
		for r := 0; r < cache.n; r++ {
			ln, sz := binary.Uvarint(cache.data[off:])
			if sz <= 0 || ln > uint64(len(cache.data)-off-sz) {
				return fmt.Errorf("vector: %s: corrupt batch on page %d: %w", p.file.Path(), pageNo, storage.ErrCorrupt)
			}
			off += sz
			if pos >= start {
				if pos >= end {
					return nil
				}
				if err := fn(pos, cache.data[off:off+int(ln)]); err != nil {
					return err
				}
			}
			off += int(ln)
			pos++
		}
		if pos >= end {
			return nil
		}
		pageNo++
	}
	return fmt.Errorf("vector: %s: scan ran past last page (pos %d, want %d)", p.file.Path(), pos, end)
}

// loadPage inflates one page into the scan's cache.
func (p *CompressedPaged) loadPage(cache *inflateCache, pageNo int64) error {
	if cache.page == pageNo {
		return nil
	}
	fr, err := p.pool.GetMeteredCtx(p.context(), p.file, pageNo, p.meter)
	if err != nil {
		return err
	}
	firstIdx := int64(binary.LittleEndian.Uint64(fr.Data[0:8]))
	nrecs := int(binary.LittleEndian.Uint16(fr.Data[8:10]))
	plen := int(binary.LittleEndian.Uint16(fr.Data[10:12]))
	flag := fr.Data[12]
	if plen > compPayload {
		p.pool.Unpin(fr, false)
		return fmt.Errorf("vector: %s: corrupt header on page %d (payload %d > max %d): %w", p.file.Path(), pageNo, plen, compPayload, storage.ErrCorrupt)
	}
	payload := fr.Data[compHeader : compHeader+plen]
	if flag == 0 {
		cache.data = append(cache.data[:0], payload...)
	} else {
		rd := flate.NewReader(bytes.NewReader(payload))
		cache.data = cache.data[:0]
		buf := make([]byte, 16<<10)
		for {
			n, err := rd.Read(buf)
			cache.data = append(cache.data, buf[:n]...)
			if err == io.EOF {
				break
			}
			if err != nil {
				p.pool.Unpin(fr, false)
				return fmt.Errorf("vector: %s: inflate page %d: %v: %w", p.file.Path(), pageNo, err, storage.ErrCorrupt)
			}
		}
		rd.Close()
	}
	p.pool.Unpin(fr, false)
	obsPagesScanned.Inc()
	obsBytesInflated.Add(int64(len(cache.data)))
	cache.page, cache.idx, cache.n = pageNo, firstIdx, nrecs
	return nil
}

// findPage binary-searches data pages for the one covering pos.
func (p *CompressedPaged) findPage(pos int64) (int64, error) {
	lo, hi := int64(1), p.file.NumPages()-1
	var ioErr error
	firstIdxOf := func(pg int64) int64 {
		fr, err := p.pool.GetMeteredCtx(p.context(), p.file, pg, p.meter)
		if err != nil {
			ioErr = err
			return 0
		}
		defer p.pool.Unpin(fr, false)
		return int64(binary.LittleEndian.Uint64(fr.Data[0:8]))
	}
	for lo < hi {
		mid := (lo + hi + 1) / 2
		fi := firstIdxOf(mid)
		if ioErr != nil {
			return 0, ioErr
		}
		if fi <= pos {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return lo, nil
}

// OpenAppendCompressed resumes appending to a finalized compressed vector
// file. Existing pages are untouched; new batches go to fresh pages (the
// page headers' firstIdx keeps positional access consistent). A meta page
// out of step with the data pages (a crash between batch flush and Close)
// is detected and reported; unlike the uncompressed format, recovery
// requires rebuilding the vector.
func OpenAppendCompressed(pool *storage.BufferPool, file *storage.File, resumeAt int64) (*CompressedWriter, error) {
	fr, err := pool.Get(file, 0)
	if err != nil {
		return nil, err
	}
	if string(fr.Data[0:4]) != compMagic {
		pool.Unpin(fr, false)
		return nil, fmt.Errorf("vector: %s: bad compressed magic %q (want %q): %w", file.Path(), fr.Data[0:4], compMagic, storage.ErrCorrupt)
	}
	metaCount := int64(binary.LittleEndian.Uint64(fr.Data[4:12]))
	metaBytes := int64(binary.LittleEndian.Uint64(fr.Data[12:20]))
	pool.Unpin(fr, false)

	w := &CompressedWriter{pool: pool, file: file, count: resumeAt, first: resumeAt}
	if resumeAt == 0 {
		if err := pool.Truncate(file, 1); err != nil {
			return nil, err
		}
		return w, nil
	}
	if file.NumPages() < 2 {
		return nil, fmt.Errorf("vector: %s: catalog records %d values but file has no data pages: %w", file.Path(), resumeAt, storage.ErrCorrupt)
	}
	// Orphan batches from an uncommitted append sit past the committed
	// count; a committed count always falls on a batch boundary (batches
	// are flushed whole, and the catalog commits only after Close flushed
	// the final one). Walk back from the end to the boundary and truncate
	// the orphans away.
	cut := file.NumPages()
	pg := file.NumPages() - 1
	for ; pg >= 1; pg-- {
		fr, err := pool.Get(file, pg)
		if err != nil {
			return nil, err
		}
		firstIdx := int64(binary.LittleEndian.Uint64(fr.Data[0:8]))
		nrecs := int64(binary.LittleEndian.Uint16(fr.Data[8:10]))
		pool.Unpin(fr, false)
		if firstIdx < resumeAt {
			if end := firstIdx + nrecs; end < resumeAt {
				return nil, fmt.Errorf("vector: %s: catalog records %d values but data pages end at %d: %w", file.Path(), resumeAt, end, storage.ErrCorrupt)
			} else if end > resumeAt {
				return nil, fmt.Errorf("vector: %s: committed count %d falls inside the batch %d..%d on page %d: %w", file.Path(), resumeAt, firstIdx, end, pg, storage.ErrCorrupt)
			}
			break
		}
		cut = pg
	}
	if pg < 1 {
		return nil, fmt.Errorf("vector: %s: no data page holds record %d: %w", file.Path(), resumeAt-1, storage.ErrCorrupt)
	}
	if err := pool.Truncate(file, cut); err != nil {
		return nil, err
	}
	switch {
	case metaCount == resumeAt:
		w.bytes = metaBytes
	case metaCount < resumeAt:
		return nil, fmt.Errorf("vector: %s: meta page records %d values but the catalog committed %d: %w", file.Path(), metaCount, resumeAt, storage.ErrCorrupt)
	default:
		// The meta page ran ahead of the commit (crash after the page flush,
		// before the catalog); recount the committed prefix.
		total, err := compressedValueBytes(pool, file, cut)
		if err != nil {
			return nil, err
		}
		w.bytes = total
	}
	return w, nil
}

// compressedValueBytes sums the raw value bytes of every record in data
// pages [1, pages) — the crash-recovery recount of OpenAppendCompressed.
func compressedValueBytes(pool *storage.BufferPool, file *storage.File, pages int64) (int64, error) {
	var total int64
	for pg := int64(1); pg < pages; pg++ {
		fr, err := pool.Get(file, pg)
		if err != nil {
			return 0, err
		}
		nrecs := int(binary.LittleEndian.Uint16(fr.Data[8:10]))
		plen := int(binary.LittleEndian.Uint16(fr.Data[10:12]))
		flag := fr.Data[12]
		if plen > compPayload {
			pool.Unpin(fr, false)
			return 0, fmt.Errorf("vector: %s: corrupt batch header on page %d: %w", file.Path(), pg, storage.ErrCorrupt)
		}
		payload := append([]byte(nil), fr.Data[compHeader:compHeader+plen]...)
		pool.Unpin(fr, false)
		data := payload
		if flag != 0 {
			rd := flate.NewReader(bytes.NewReader(payload))
			data, err = io.ReadAll(rd)
			rd.Close()
			if err != nil {
				return 0, fmt.Errorf("vector: %s: inflate page %d: %v: %w", file.Path(), pg, err, storage.ErrCorrupt)
			}
		}
		off := 0
		for i := 0; i < nrecs; i++ {
			ln, n := binary.Uvarint(data[off:])
			if n <= 0 || off+n+int(ln) > len(data) {
				return 0, fmt.Errorf("vector: %s: corrupt record on page %d: %w", file.Path(), pg, storage.ErrCorrupt)
			}
			total += int64(ln)
			off += n + int(ln)
		}
	}
	return total, nil
}
