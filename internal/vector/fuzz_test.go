package vector

import (
	"encoding/binary"
	"os"
	"path/filepath"
	"testing"

	"vxml/internal/storage"
)

// fuzzFile materialises a two-page vector file inside a fresh in-memory
// store: page 0 carries the given magic followed by fuzz-controlled meta
// bytes, page 1 is a fuzz-controlled data page. Both pages get valid CRC
// trailers, so the fuzzer exercises the format decoders *behind* the
// checksum layer — corruption the CRC would catch never reaches them, and
// what it cannot catch (a crafted but well-summed page) must still decode
// without panicking.
func fuzzFile(t *testing.T, magic string, meta, data []byte) (*storage.BufferPool, *storage.File) {
	t.Helper()
	mem := storage.NewMemFS()
	store, err := storage.OpenStoreFS(mem, "repo", 16)
	if err != nil {
		t.Fatalf("open store: %v", err)
	}
	t.Cleanup(func() { store.Close() })
	path := filepath.Join("repo", "v.vec")
	raw, err := mem.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		t.Fatalf("create raw file: %v", err)
	}
	page := make([]byte, storage.PageSize)
	copy(page[0:4], magic)
	copy(page[4:storage.PageDataSize], meta)
	binary.LittleEndian.PutUint32(page[storage.PageDataSize:], storage.Checksum(page[:storage.PageDataSize]))
	if _, err := raw.WriteAt(page, 0); err != nil {
		t.Fatalf("write meta page: %v", err)
	}
	page = make([]byte, storage.PageSize)
	copy(page[:storage.PageDataSize], data)
	binary.LittleEndian.PutUint32(page[storage.PageDataSize:], storage.Checksum(page[:storage.PageDataSize]))
	if _, err := raw.WriteAt(page, storage.PageSize); err != nil {
		t.Fatalf("write data page: %v", err)
	}
	if err := raw.Close(); err != nil {
		t.Fatalf("close raw file: %v", err)
	}
	f, err := store.Open("v.vec")
	if err != nil {
		t.Fatalf("open via store: %v", err)
	}
	return store.Pool(), f
}

// scanSome drives the decoder over a bounded prefix of v. Errors are the
// expected outcome for corrupt input; only panics (caught by the fuzz
// harness) and unbounded work are bugs. The cap matters: a crafted meta
// page can claim 2^60 values, and the scan range must come from what we
// ask for, not from that claim.
func scanSome(v Vector) {
	n := v.Len()
	if n < 0 {
		return
	}
	if n > 1<<16 {
		n = 1 << 16
	}
	_ = v.Scan(0, n, func(_ int64, _ []byte) error { return nil })
	if v.Len() > 0 {
		_, _ = Get(v, 0)
		_, _ = Get(v, v.Len()-1)
	}
}

// FuzzPageDecode feeds arbitrary meta and data page contents (with valid
// checksums) to every read and append-resume path of both vector formats.
// The contract under test: corrupt pages yield errors, never panics.
func FuzzPageDecode(f *testing.F) {
	// A well-formed plain vector: count 2, 2 value bytes; data page with
	// firstIdx 0, 2 records, 4 used bytes: ["a", "b"].
	meta := make([]byte, 16)
	binary.LittleEndian.PutUint64(meta[0:8], 2)
	binary.LittleEndian.PutUint64(meta[8:16], 2)
	data := make([]byte, 16)
	binary.LittleEndian.PutUint16(data[8:10], 2)
	binary.LittleEndian.PutUint16(data[10:12], 4)
	copy(data[12:16], []byte{1, 'a', 1, 'b'})
	f.Add(meta, data)
	f.Add([]byte{}, []byte{})
	// Absurd counts and record lengths.
	huge := make([]byte, 16)
	binary.LittleEndian.PutUint64(huge[0:8], 1<<60)
	binary.LittleEndian.PutUint64(huge[8:16], 1<<60)
	f.Add(huge, []byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff})

	f.Fuzz(func(t *testing.T, meta []byte, data []byte) {
		for _, magic := range []string{"VXV2", "VXC2"} {
			pool, file := fuzzFile(t, magic, meta, data)
			if v, err := OpenPaged(pool, file); err == nil {
				scanSome(v)
			}
			if v, err := OpenCompressed(pool, file); err == nil {
				scanSome(v)
			}
			for _, resume := range []int64{0, 1, 3} {
				if w, err := OpenAppendWriter(pool, file, resume); err == nil {
					_ = w.AppendString("x")
					_ = w.Close()
				}
				if w, err := OpenAppendCompressed(pool, file, resume); err == nil {
					_ = w.AppendString("x")
					_ = w.Close()
				}
			}
		}
	})
}
