package vector

import (
	"fmt"
	"testing"

	"vxml/internal/storage"
)

// benchChecksumScan measures a full sequential scan of a multi-page vector
// through a pool much smaller than the file, so every page is faulted in
// (and, when verify is on, CRC-checked) on every iteration. The ratio of
// the two benchmarks is the checksum-on-read overhead the format pays;
// the robustness budget is <5% on representative data.
//
// Value width is the lever: short values (the datasets' typical titles,
// names, and numbers) pack hundreds of records per page, so per-page
// decode work dwarfs one 8 KiB CRC; wide values approach the worst case
// where the CRC competes with a nearly free scan.
func benchChecksumScan(b *testing.B, verify bool, wide bool) {
	store, pool := newPool(b, 64)
	f, err := store.Open("v")
	if err != nil {
		b.Fatal(err)
	}
	w, err := NewWriter(pool, f)
	if err != nil {
		b.Fatal(err)
	}
	const nvals = 200_000
	for i := 0; i < nvals; i++ {
		var val string
		if wide {
			val = fmt.Sprintf("value-%06d-%088d", i, i) // ~100 B → ~2500 pages
		} else {
			val = fmt.Sprintf("value-%06d", i) // 12 B → ~300 pages
		}
		if err := w.AppendString(val); err != nil {
			b.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		b.Fatal(err)
	}
	v, err := OpenPaged(pool, f)
	if err != nil {
		b.Fatal(err)
	}
	prev := storage.SetVerifyChecksums(verify)
	defer storage.SetVerifyChecksums(prev)
	b.SetBytes(f.NumPages() * storage.PageSize)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var n int64
		if err := v.Scan(0, v.Len(), func(int64, []byte) error { n++; return nil }); err != nil {
			b.Fatal(err)
		}
		if n != nvals {
			b.Fatalf("scanned %d values, want %d", n, nvals)
		}
	}
}

func BenchmarkScanVerifyOn(b *testing.B)      { benchChecksumScan(b, true, false) }
func BenchmarkScanVerifyOff(b *testing.B)     { benchChecksumScan(b, false, false) }
func BenchmarkScanWideVerifyOn(b *testing.B)  { benchChecksumScan(b, true, true) }
func BenchmarkScanWideVerifyOff(b *testing.B) { benchChecksumScan(b, false, true) }
