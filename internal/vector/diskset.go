package vector

import (
	"context"
	"encoding/json"
	"fmt"
	"path/filepath"
	"sort"
	"sync"

	"vxml/internal/obs"
	"vxml/internal/storage"
)

// DiskSet is a Set backed by a storage.Store: one paged file per vector
// plus a catalog mapping vector names (which contain '/') to file names.
// Vectors are opened lazily — a query pays I/O only for the vectors it
// scans, which is the paper's central claim.
//
// Concurrency: the read side (Vector, Count, Names, CatalogBytes) is safe
// for concurrent use once the set is loaded — many queries can share one
// DiskSet. The write side (NewWriter, AppendWriter, CloseVector, Save,
// SetCompression) mutates the catalog and is single-owner: run it from one
// goroutine, with no concurrent readers, as during vectorization.
type DiskSet struct {
	store    *storage.Store
	catalog  map[string]catalogEntry
	mu       sync.Mutex // guards open
	open     map[string]Vector
	compress bool
}

type catalogEntry struct {
	File       string `json:"file"`
	Count      int64  `json:"count"`
	Bytes      int64  `json:"bytes"`
	Compressed bool   `json:"compressed,omitempty"`
}

// SetCompression makes subsequently created vectors DEFLATE-compressed
// per page (the §6 extension); existing vectors keep their format, which
// the catalog records per vector.
func (s *DiskSet) SetCompression(on bool) { s.compress = on }

// SetWriter appends values to one vector of a DiskSet; both the plain and
// the compressed writers satisfy it.
type SetWriter interface {
	Append(val []byte) error
	AppendString(val string) error
	Count() int64
	ValueBytes() int64
	Close() error
}

// CatalogName is the catalog's file name within a store directory.
const CatalogName = "vectors.json"

const catalogName = CatalogName

// CreateDiskSet starts an empty disk set in store. Call Save after all
// writers are closed.
func CreateDiskSet(store *storage.Store) *DiskSet {
	return &DiskSet{
		store:   store,
		catalog: make(map[string]catalogEntry),
		open:    make(map[string]Vector),
	}
}

// OpenDiskSet opens an existing disk set from store's directory, verifying
// the catalog's checksum footer.
func OpenDiskSet(store *storage.Store) (*DiskSet, error) {
	data, err := storage.ReadFileChecksummed(store.FS(), filepath.Join(store.Dir(), catalogName))
	if err != nil {
		return nil, fmt.Errorf("vector: open disk set: %w", err)
	}
	s := CreateDiskSet(store)
	if err := json.Unmarshal(data, &s.catalog); err != nil {
		return nil, fmt.Errorf("vector: parse catalog: %v: %w", err, storage.ErrCorrupt)
	}
	return s, nil
}

// NewWriter creates the named vector and returns a writer for it. The name
// must be new. The caller must Close the writer (via CloseVector), then
// call Save once all vectors are written.
func (s *DiskSet) NewWriter(name string) (SetWriter, error) {
	if _, ok := s.catalog[name]; ok {
		return nil, fmt.Errorf("vector: vector %q already exists", name)
	}
	fileName := fmt.Sprintf("v%06d.vec", len(s.catalog))
	f, err := s.store.Open(fileName)
	if err != nil {
		return nil, err
	}
	s.catalog[name] = catalogEntry{File: fileName, Compressed: s.compress}
	if s.compress {
		return NewCompressedWriter(s.store.Pool(), f)
	}
	return NewWriter(s.store.Pool(), f)
}

// CloseVector finalizes a vector written via NewWriter and records its
// stats in the catalog.
func (s *DiskSet) CloseVector(name string, w SetWriter) error {
	count, bytes := w.Count(), w.ValueBytes()
	if err := w.Close(); err != nil {
		return err
	}
	e := s.catalog[name]
	e.Count, e.Bytes = count, bytes
	s.catalog[name] = e
	return nil
}

// Save writes the catalog atomically with a checksum footer. The pool is
// flushed first, so the catalog never describes pages still in memory.
// Call it after all writers are closed.
func (s *DiskSet) Save() error {
	return s.SaveSync(nil)
}

// SaveSync is Save with a durability barrier: after the pool flush it
// fsyncs the named vectors' files before the catalog goes down, so a crash
// right after SaveSync leaves catalog and vector data consistent. Append
// paths must list every vector they touched; nil skips the barrier (bulk
// builds that commit durably at a higher level).
func (s *DiskSet) SaveSync(touched []string) error {
	if err := s.store.Pool().Flush(); err != nil {
		return err
	}
	for _, name := range touched {
		e, ok := s.catalog[name]
		if !ok {
			return fmt.Errorf("vector: sync unknown vector %q", name)
		}
		f, err := s.store.Open(e.File)
		if err != nil {
			return err
		}
		if err := f.Sync(); err != nil {
			return err
		}
	}
	data, err := json.MarshalIndent(s.catalog, "", " ")
	if err != nil {
		return err
	}
	if err := storage.WriteFileAtomic(s.store.FS(), filepath.Join(s.store.Dir(), catalogName), data); err != nil {
		return fmt.Errorf("vector: save catalog: %w", err)
	}
	return nil
}

// Names implements Set.
func (s *DiskSet) Names() []string {
	out := make([]string, 0, len(s.catalog))
	for n := range s.catalog {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Vector implements Set, opening the paged file on first use. Concurrent
// callers of the same name serialize on the set's lock and share one
// reader (Paged and CompressedPaged are scan-state-free, so sharing is
// safe).
func (s *DiskSet) Vector(name string) (Vector, error) {
	return s.VectorCtx(context.Background(), nil, name)
}

// VectorCtx implements CtxSet: a cold open's meta-page read is charged to
// m and retries trace on ctx's span, so the first query to touch a vector
// owns the I/O its open cost. A warm open (cached reader) does no I/O and
// ignores both.
func (s *DiskSet) VectorCtx(ctx context.Context, m *obs.TaskMeter, name string) (Vector, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if v, ok := s.open[name]; ok {
		return v, nil
	}
	e, ok := s.catalog[name]
	if !ok {
		return nil, fmt.Errorf("vector: no vector %q", name)
	}
	f, err := s.store.Open(e.File)
	if err != nil {
		return nil, err
	}
	var v Vector
	if e.Compressed {
		v, err = OpenCompressedCtx(ctx, s.store.Pool(), f, m)
	} else {
		v, err = OpenPagedCtx(ctx, s.store.Pool(), f, m)
	}
	if err != nil {
		return nil, err
	}
	// The catalog is committed after vector data on every durable path, so
	// its count is authoritative. A longer vector is the orphaned tail of an
	// append that crashed before its catalog commit: clamp to the catalog
	// count and the repository reads exactly as it did before that append.
	// A shorter vector means lost committed data — corruption.
	if n := v.Len(); n > e.Count {
		v = &clamped{Vector: v, n: e.Count}
	} else if n < e.Count {
		return nil, fmt.Errorf("vector: %s (vector %q): catalog records %d values but file holds %d: %w",
			f.Path(), name, e.Count, n, storage.ErrCorrupt)
	}
	s.open[name] = v
	return v, nil
}

// clamped exposes only the first n values of a vector — the catalog's view
// of a file that carries an uncommitted append tail.
type clamped struct {
	Vector
	n int64
}

func (c *clamped) Len() int64 { return c.n }

// Metered implements Meterable by forwarding to the wrapped vector's
// Metered (both disk formats implement it), keeping the clamp.
func (c *clamped) Metered(m *obs.TaskMeter) Vector {
	if mv, ok := c.Vector.(Meterable); ok {
		return &clamped{Vector: mv.Metered(m), n: c.n}
	}
	return c
}

// WithContext implements Contextual by forwarding to the wrapped vector,
// keeping the clamp.
func (c *clamped) WithContext(ctx context.Context) Vector {
	if cv, ok := c.Vector.(Contextual); ok {
		return &clamped{Vector: cv.WithContext(ctx), n: c.n}
	}
	return c
}

func (c *clamped) Scan(start, n int64, fn func(pos int64, val []byte) error) error {
	if start < 0 || start+n > c.n {
		return fmt.Errorf("vector: scan [%d,%d) out of range 0..%d", start, start+n, c.n)
	}
	return c.Vector.Scan(start, n, fn)
}

// Reverify re-reads the named vector from disk end to end — every page
// through its CRC trailer, every record through its structural bounds —
// and reports the first failure. It is the quarantine-clear path's proof
// of health: the cached reader is discarded and the vector's buffered
// pages dropped first, so the verification reads the *disk*, not frames
// cached from before the failure. On success later Vector calls reopen
// a fresh reader.
func (s *DiskSet) Reverify(name string) error {
	s.mu.Lock()
	delete(s.open, name)
	e, ok := s.catalog[name]
	s.mu.Unlock()
	if !ok {
		return fmt.Errorf("vector: no vector %q", name)
	}
	f, err := s.store.Open(e.File)
	if err != nil {
		return err
	}
	// A frame pinned by an in-flight scan cannot be dropped; the caller
	// retries once that query drains. (Quarantined vectors fail fast in
	// the engine, so pins on them are short-lived stragglers.)
	if err := s.store.Pool().DropFile(f); err != nil {
		return fmt.Errorf("vector: reverify %q: %w", name, err)
	}
	v, err := s.Vector(name)
	if err != nil {
		return err
	}
	return v.Scan(0, v.Len(), func(int64, []byte) error { return nil })
}

// Files returns the on-disk file name and current page count of every
// cataloged vector (for manifests and integrity checks).
func (s *DiskSet) Files() (map[string]int64, error) {
	out := make(map[string]int64, len(s.catalog))
	for _, e := range s.catalog {
		f, err := s.store.Open(e.File)
		if err != nil {
			return nil, err
		}
		out[e.File] = f.NumPages()
	}
	return out, nil
}

// FileOf returns the on-disk file name holding the named vector.
func (s *DiskSet) FileOf(name string) (string, bool) {
	e, ok := s.catalog[name]
	return e.File, ok
}

// Count returns the catalog's record count for a vector without opening it.
func (s *DiskSet) Count(name string) (int64, bool) {
	e, ok := s.catalog[name]
	return e.Count, ok
}

// CatalogBytes returns the summed raw value bytes across all vectors, from
// the catalog alone (no I/O).
func (s *DiskSet) CatalogBytes() int64 {
	var total int64
	for _, e := range s.catalog {
		total += e.Bytes
	}
	return total
}

// AppendWriter returns a writer positioned at the end of the named vector,
// creating the vector if it does not exist yet (a newly appearing path).
// Finalize with CloseVector, then Save.
func (s *DiskSet) AppendWriter(name string) (SetWriter, error) {
	e, ok := s.catalog[name]
	if !ok {
		return s.NewWriter(name)
	}
	s.mu.Lock()
	delete(s.open, name) // invalidate any cached reader
	s.mu.Unlock()
	f, err := s.store.Open(e.File)
	if err != nil {
		return nil, err
	}
	if e.Compressed {
		return OpenAppendCompressed(s.store.Pool(), f, e.Count)
	}
	return OpenAppendWriter(s.store.Pool(), f, e.Count)
}

// Rollback cuts the catalog's count for a vector back to n — the
// recovery step for an append that committed its catalog but crashed
// before the skeleton commit: the skeleton on disk (the authority, being
// the last file committed) still describes the pre-append document, so
// the extra cataloged values are orphans. The change is in-memory; the
// next committed append rewrites the durable catalog. The recorded byte
// total keeps its pre-rollback value until then (it feeds statistics,
// not correctness, and the next append recomputes it exactly).
func (s *DiskSet) Rollback(name string, n int64) error {
	e, ok := s.catalog[name]
	if !ok {
		return fmt.Errorf("vector: no vector %q", name)
	}
	if n > e.Count {
		return fmt.Errorf("vector: rollback of %q to %d values, catalog has only %d", name, n, e.Count)
	}
	if n == e.Count {
		return nil
	}
	e.Count = n
	s.catalog[name] = e
	s.mu.Lock()
	delete(s.open, name) // drop any reader clamped to the old count
	s.mu.Unlock()
	return nil
}
