package vector

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"vxml/internal/storage"
)

// DiskSet is a Set backed by a storage.Store: one paged file per vector
// plus a catalog mapping vector names (which contain '/') to file names.
// Vectors are opened lazily — a query pays I/O only for the vectors it
// scans, which is the paper's central claim.
//
// Concurrency: the read side (Vector, Count, Names, CatalogBytes) is safe
// for concurrent use once the set is loaded — many queries can share one
// DiskSet. The write side (NewWriter, AppendWriter, CloseVector, Save,
// SetCompression) mutates the catalog and is single-owner: run it from one
// goroutine, with no concurrent readers, as during vectorization.
type DiskSet struct {
	store    *storage.Store
	catalog  map[string]catalogEntry
	mu       sync.Mutex // guards open
	open     map[string]Vector
	compress bool
}

type catalogEntry struct {
	File       string `json:"file"`
	Count      int64  `json:"count"`
	Bytes      int64  `json:"bytes"`
	Compressed bool   `json:"compressed,omitempty"`
}

// SetCompression makes subsequently created vectors DEFLATE-compressed
// per page (the §6 extension); existing vectors keep their format, which
// the catalog records per vector.
func (s *DiskSet) SetCompression(on bool) { s.compress = on }

// SetWriter appends values to one vector of a DiskSet; both the plain and
// the compressed writers satisfy it.
type SetWriter interface {
	Append(val []byte) error
	AppendString(val string) error
	Count() int64
	ValueBytes() int64
	Close() error
}

const catalogName = "vectors.json"

// CreateDiskSet starts an empty disk set in store. Call Save after all
// writers are closed.
func CreateDiskSet(store *storage.Store) *DiskSet {
	return &DiskSet{
		store:   store,
		catalog: make(map[string]catalogEntry),
		open:    make(map[string]Vector),
	}
}

// OpenDiskSet opens an existing disk set from store's directory.
func OpenDiskSet(store *storage.Store) (*DiskSet, error) {
	data, err := os.ReadFile(filepath.Join(store.Dir(), catalogName))
	if err != nil {
		return nil, fmt.Errorf("vector: open disk set: %w", err)
	}
	s := CreateDiskSet(store)
	if err := json.Unmarshal(data, &s.catalog); err != nil {
		return nil, fmt.Errorf("vector: parse catalog: %w", err)
	}
	return s, nil
}

// NewWriter creates the named vector and returns a writer for it. The name
// must be new. The caller must Close the writer (via CloseVector), then
// call Save once all vectors are written.
func (s *DiskSet) NewWriter(name string) (SetWriter, error) {
	if _, ok := s.catalog[name]; ok {
		return nil, fmt.Errorf("vector: vector %q already exists", name)
	}
	fileName := fmt.Sprintf("v%06d.vec", len(s.catalog))
	f, err := s.store.Open(fileName)
	if err != nil {
		return nil, err
	}
	s.catalog[name] = catalogEntry{File: fileName, Compressed: s.compress}
	if s.compress {
		return NewCompressedWriter(s.store.Pool(), f)
	}
	return NewWriter(s.store.Pool(), f)
}

// CloseVector finalizes a vector written via NewWriter and records its
// stats in the catalog.
func (s *DiskSet) CloseVector(name string, w SetWriter) error {
	count, bytes := w.Count(), w.ValueBytes()
	if err := w.Close(); err != nil {
		return err
	}
	e := s.catalog[name]
	e.Count, e.Bytes = count, bytes
	s.catalog[name] = e
	return nil
}

// Save writes the catalog. Call it after all writers are closed.
func (s *DiskSet) Save() error {
	data, err := json.MarshalIndent(s.catalog, "", " ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(filepath.Join(s.store.Dir(), catalogName), data, 0o644); err != nil {
		return fmt.Errorf("vector: save catalog: %w", err)
	}
	return s.store.Pool().Flush()
}

// Names implements Set.
func (s *DiskSet) Names() []string {
	out := make([]string, 0, len(s.catalog))
	for n := range s.catalog {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Vector implements Set, opening the paged file on first use. Concurrent
// callers of the same name serialize on the set's lock and share one
// reader (Paged and CompressedPaged are scan-state-free, so sharing is
// safe).
func (s *DiskSet) Vector(name string) (Vector, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if v, ok := s.open[name]; ok {
		return v, nil
	}
	e, ok := s.catalog[name]
	if !ok {
		return nil, fmt.Errorf("vector: no vector %q", name)
	}
	f, err := s.store.Open(e.File)
	if err != nil {
		return nil, err
	}
	var v Vector
	if e.Compressed {
		v, err = OpenCompressed(s.store.Pool(), f)
	} else {
		v, err = OpenPaged(s.store.Pool(), f)
	}
	if err != nil {
		return nil, err
	}
	s.open[name] = v
	return v, nil
}

// Count returns the catalog's record count for a vector without opening it.
func (s *DiskSet) Count(name string) (int64, bool) {
	e, ok := s.catalog[name]
	return e.Count, ok
}

// CatalogBytes returns the summed raw value bytes across all vectors, from
// the catalog alone (no I/O).
func (s *DiskSet) CatalogBytes() int64 {
	var total int64
	for _, e := range s.catalog {
		total += e.Bytes
	}
	return total
}

// AppendWriter returns a writer positioned at the end of the named vector,
// creating the vector if it does not exist yet (a newly appearing path).
// Finalize with CloseVector, then Save.
func (s *DiskSet) AppendWriter(name string) (SetWriter, error) {
	e, ok := s.catalog[name]
	if !ok {
		return s.NewWriter(name)
	}
	s.mu.Lock()
	delete(s.open, name) // invalidate any cached reader
	s.mu.Unlock()
	f, err := s.store.Open(e.File)
	if err != nil {
		return nil, err
	}
	if e.Compressed {
		return OpenAppendCompressed(s.store.Pool(), f)
	}
	return OpenAppendWriter(s.store.Pool(), f)
}
