package vector

import (
	"context"
	"encoding/binary"
	"fmt"

	"vxml/internal/obs"
	"vxml/internal/storage"
)

// On-disk vector file layout.
//
// Page 0 is the meta page: magic "VXV2", then u64 record count and u64
// total value bytes. Data pages follow, each with a 12-byte header —
// u64 firstIdx (position of the first record starting in the page),
// u16 record count, u16 used payload bytes — and records packed as
// uvarint(length) + bytes. Records never span pages, so one value must fit
// a page payload (MaxValue); the datasets this system targets (scientific
// and synthetic repositories of short fields) satisfy this comfortably.
// Positional seeks binary-search page headers via firstIdx, touching
// O(log pages) pages.
//
// The payload is bounded by storage.PageDataSize, not PageSize: the
// storage layer reserves the last 4 bytes of every page for a CRC32C
// trailer (format "VXV2"; "VXV1" predates the trailer and is rejected).

const (
	metaMagic  = "VXV2"
	headerSize = 12
	payload    = storage.PageDataSize - headerSize
	// MaxValue is the largest storable value, bounded by one page payload
	// minus the worst-case length prefix.
	MaxValue = payload - binary.MaxVarintLen32
)

// Writer appends values to a paged vector file. Call Close to finalize the
// meta page. A Writer must be the only user of its file until closed.
//
// The writer does not keep its current page pinned between appends (it
// re-pins per append and patches the page header each time), so thousands
// of concurrent writers — one per vector of an irregular document — share
// a bounded buffer pool.
type Writer struct {
	pool  *storage.BufferPool
	file  *storage.File
	page  int64 // current data page, -1 before the first
	used  int
	nrecs int
	count int64
	bytes int64
	err   error
}

// NewWriter starts writing a fresh vector into file, which must be empty.
func NewWriter(pool *storage.BufferPool, file *storage.File) (*Writer, error) {
	if file.NumPages() != 0 {
		return nil, fmt.Errorf("vector: NewWriter on non-empty file %s", file.Path())
	}
	// Reserve the meta page.
	fr, _, err := pool.Alloc(file)
	if err != nil {
		return nil, err
	}
	pool.Unpin(fr, true)
	return &Writer{pool: pool, file: file, page: -1}, nil
}

// Append adds one value at the next position.
func (w *Writer) Append(val []byte) error {
	if w.err != nil {
		return w.err
	}
	if len(val) > MaxValue {
		w.err = fmt.Errorf("vector: value of %d bytes exceeds max %d", len(val), MaxValue)
		return w.err
	}
	var lenBuf [binary.MaxVarintLen32]byte
	ln := binary.PutUvarint(lenBuf[:], uint64(len(val)))
	need := ln + len(val)
	var fr *storage.Frame
	if w.page < 0 || w.used+need > payload {
		var err error
		fr, w.page, err = w.pool.Alloc(w.file)
		if err != nil {
			w.err = err
			return err
		}
		w.used, w.nrecs = 0, 0
		binary.LittleEndian.PutUint64(fr.Data[0:8], uint64(w.count))
	} else {
		var err error
		fr, err = w.pool.Get(w.file, w.page)
		if err != nil {
			w.err = err
			return err
		}
	}
	off := headerSize + w.used
	copy(fr.Data[off:], lenBuf[:ln])
	copy(fr.Data[off+ln:], val)
	w.used += need
	w.nrecs++
	w.count++
	w.bytes += int64(len(val))
	// Keep the header current so the page is valid even if evicted.
	binary.LittleEndian.PutUint16(fr.Data[8:10], uint16(w.nrecs))
	binary.LittleEndian.PutUint16(fr.Data[10:12], uint16(w.used))
	w.pool.Unpin(fr, true)
	return nil
}

// AppendString adds one string value.
func (w *Writer) AppendString(val string) error { return w.Append([]byte(val)) }

// Count returns the number of values appended so far.
func (w *Writer) Count() int64 { return w.count }

// ValueBytes returns the raw byte size of all appended values.
func (w *Writer) ValueBytes() int64 { return w.bytes }

// Close finalizes the vector by writing the meta page (data page headers
// are kept current on every append). The Writer must not be used
// afterwards.
func (w *Writer) Close() error {
	if w.err != nil {
		return w.err
	}
	fr, err := w.pool.Get(w.file, 0)
	if err != nil {
		return err
	}
	copy(fr.Data[0:4], metaMagic)
	binary.LittleEndian.PutUint64(fr.Data[4:12], uint64(w.count))
	binary.LittleEndian.PutUint64(fr.Data[12:20], uint64(w.bytes))
	w.pool.Unpin(fr, true)
	w.err = fmt.Errorf("vector: writer closed")
	return nil
}

// Paged is a Vector reading from a paged vector file through a buffer pool.
// It keeps no per-scan state, so one Paged may serve any number of
// concurrent Scans (the buffer pool underneath is concurrency-safe).
type Paged struct {
	pool  *storage.BufferPool
	file  *storage.File
	count int64
	bytes int64
	meter *obs.TaskMeter  // nil on shared readers; set on Metered views
	ctx   context.Context // nil on shared readers; set on WithContext views
}

// Metered implements Meterable: the returned view charges page faults to
// m. The receiver is unchanged, so the shared reader stays unattributed.
func (p *Paged) Metered(m *obs.TaskMeter) Vector {
	v := *p
	v.meter = m
	return &v
}

// WithContext implements Contextual: the returned view's page reads honor
// ctx during transient-read retry backoff.
func (p *Paged) WithContext(ctx context.Context) Vector {
	v := *p
	v.ctx = ctx
	return &v
}

func (p *Paged) context() context.Context {
	if p.ctx != nil {
		return p.ctx
	}
	return context.Background()
}

// OpenPaged opens a finalized vector file.
func OpenPaged(pool *storage.BufferPool, file *storage.File) (*Paged, error) {
	return OpenPagedCtx(context.Background(), pool, file, nil)
}

// OpenPagedCtx is OpenPaged with request attribution: the meta-page read
// is charged to m and its transient-read retries become events on ctx's
// span, so a fault on the very first page a query touches shows up on
// that query's trace instead of vanishing into process-wide counters.
func OpenPagedCtx(ctx context.Context, pool *storage.BufferPool, file *storage.File, m *obs.TaskMeter) (*Paged, error) {
	fr, err := pool.GetMeteredCtx(ctx, file, 0, m)
	if err != nil {
		return nil, err
	}
	defer pool.Unpin(fr, false)
	if string(fr.Data[0:4]) != metaMagic {
		return nil, fmt.Errorf("vector: %s: bad magic %q (want %q): %w", file.Path(), fr.Data[0:4], metaMagic, storage.ErrCorrupt)
	}
	return &Paged{
		pool:  pool,
		file:  file,
		count: int64(binary.LittleEndian.Uint64(fr.Data[4:12])),
		bytes: int64(binary.LittleEndian.Uint64(fr.Data[12:20])),
	}, nil
}

// Len implements Vector.
func (p *Paged) Len() int64 { return p.count }

// ValueBytes returns the total byte size of all values.
func (p *Paged) ValueBytes() int64 { return p.bytes }

// Scan implements Vector: it seeks to the page containing start with a
// binary search over page headers, then streams pages sequentially.
func (p *Paged) Scan(start, n int64, fn func(pos int64, val []byte) error) error {
	if n == 0 {
		return nil
	}
	if start < 0 || start+n > p.count {
		return fmt.Errorf("vector: scan [%d,%d) out of range 0..%d", start, start+n, p.count)
	}
	pageNo, err := p.findPage(start)
	if err != nil {
		return err
	}
	pos := int64(-1)
	end := start + n
	for pageNo < p.file.NumPages() {
		fr, err := p.pool.GetMeteredCtx(p.context(), p.file, pageNo, p.meter)
		if err != nil {
			return err
		}
		obsPagesScanned.Inc()
		firstIdx := int64(binary.LittleEndian.Uint64(fr.Data[0:8]))
		nrecs := int(binary.LittleEndian.Uint16(fr.Data[8:10]))
		used := int(binary.LittleEndian.Uint16(fr.Data[10:12]))
		if used > payload {
			p.pool.Unpin(fr, false)
			return fmt.Errorf("vector: %s: corrupt header on page %d (used %d > payload %d): %w", p.file.Path(), pageNo, used, payload, storage.ErrCorrupt)
		}
		// Record lengths come from disk: every prefix and value must stay
		// inside the page's used payload, or the record is corrupt.
		limit := headerSize + used
		pos = firstIdx
		off := headerSize
		for r := 0; r < nrecs; r++ {
			ln, sz := binary.Uvarint(fr.Data[off:limit])
			if sz <= 0 || ln > uint64(limit-off-sz) {
				p.pool.Unpin(fr, false)
				return fmt.Errorf("vector: %s: corrupt record on page %d: %w", p.file.Path(), pageNo, storage.ErrCorrupt)
			}
			off += sz
			if pos >= start {
				if pos >= end {
					p.pool.Unpin(fr, false)
					return nil
				}
				if err := fn(pos, fr.Data[off:off+int(ln)]); err != nil {
					p.pool.Unpin(fr, false)
					return err
				}
			}
			off += int(ln)
			pos++
		}
		p.pool.Unpin(fr, false)
		if pos >= end {
			return nil
		}
		pageNo++
	}
	return fmt.Errorf("vector: %s: scan ran past last page (pos %d, want %d)", p.file.Path(), pos, end)
}

// findPage binary-searches data pages for the one whose records cover pos.
func (p *Paged) findPage(pos int64) (int64, error) {
	lo, hi := int64(1), p.file.NumPages()-1
	var scanErr error
	firstIdxOf := func(pg int64) int64 {
		fr, err := p.pool.GetMeteredCtx(p.context(), p.file, pg, p.meter)
		if err != nil {
			scanErr = err
			return 0
		}
		defer p.pool.Unpin(fr, false)
		return int64(binary.LittleEndian.Uint64(fr.Data[0:8]))
	}
	for lo < hi {
		mid := (lo + hi + 1) / 2
		fi := firstIdxOf(mid)
		if scanErr != nil {
			return 0, scanErr
		}
		if fi <= pos {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return lo, nil
}

// OpenAppendWriter resumes appending to a finalized vector file: the meta
// page supplies the running count, and the last data page's header tells
// where to continue — the write half of the paper's §6 incremental
// maintenance. The caller must Close again to refresh the meta page.
//
// resumeAt is the committed value count from the catalog — the durable
// truth. The file may disagree in either direction after a crash: data
// pages (and even the meta page) can run past resumeAt when an append
// died before its catalog commit. Such orphan values are NOT adopted —
// they were never committed, and adopting them would misalign vector
// positions against the skeleton — the file is truncated back to exactly
// resumeAt values (so page headers stay monotonic for positional search)
// and the writer resumes there. A file whose data pages end before
// resumeAt is missing committed values and is reported as corruption.
func OpenAppendWriter(pool *storage.BufferPool, file *storage.File, resumeAt int64) (*Writer, error) {
	fr, err := pool.Get(file, 0)
	if err != nil {
		return nil, err
	}
	if string(fr.Data[0:4]) != metaMagic {
		pool.Unpin(fr, false)
		return nil, fmt.Errorf("vector: %s: bad magic %q (want %q): %w", file.Path(), fr.Data[0:4], metaMagic, storage.ErrCorrupt)
	}
	metaCount := int64(binary.LittleEndian.Uint64(fr.Data[4:12]))
	metaBytes := int64(binary.LittleEndian.Uint64(fr.Data[12:20]))
	pool.Unpin(fr, false)

	w := &Writer{pool: pool, file: file, page: -1}
	if resumeAt == 0 {
		if err := pool.Truncate(file, 1); err != nil {
			return nil, err
		}
		return w, nil
	}
	if file.NumPages() < 2 {
		return nil, fmt.Errorf("vector: %s: catalog records %d values but file has no data pages: %w", file.Path(), resumeAt, storage.ErrCorrupt)
	}
	// Locate the page holding record resumeAt-1, walking back from the
	// end (the resume point is at or near the tail).
	pg := file.NumPages() - 1
	var firstIdx int64
	var nrecs, used int
	for {
		fr, err := pool.Get(file, pg)
		if err != nil {
			return nil, err
		}
		firstIdx = int64(binary.LittleEndian.Uint64(fr.Data[0:8]))
		nrecs = int(binary.LittleEndian.Uint16(fr.Data[8:10]))
		used = int(binary.LittleEndian.Uint16(fr.Data[10:12]))
		pool.Unpin(fr, false)
		if used > payload {
			return nil, fmt.Errorf("vector: %s: corrupt header on page %d (used %d > payload %d): %w", file.Path(), pg, used, payload, storage.ErrCorrupt)
		}
		if firstIdx < resumeAt {
			break
		}
		pg--
		if pg < 1 {
			return nil, fmt.Errorf("vector: %s: no data page holds record %d: %w", file.Path(), resumeAt-1, storage.ErrCorrupt)
		}
	}
	if end := firstIdx + int64(nrecs); end < resumeAt {
		return nil, fmt.Errorf("vector: %s: catalog records %d values but data pages end at %d: %w", file.Path(), resumeAt, end, storage.ErrCorrupt)
	}
	// Cut the page at record resumeAt: re-decode its records to find the
	// byte offset where the next append lands, and rewrite the header so
	// the page no longer claims the orphan records past the cut.
	fr, err = pool.Get(file, pg)
	if err != nil {
		return nil, err
	}
	off := 0
	for i := int64(0); i < resumeAt-firstIdx; i++ {
		ln, sz := binary.Uvarint(fr.Data[headerSize+off : headerSize+used])
		if sz <= 0 || ln > uint64(used-off-sz) {
			pool.Unpin(fr, false)
			return nil, fmt.Errorf("vector: %s: corrupt record on page %d: %w", file.Path(), pg, storage.ErrCorrupt)
		}
		off += sz + int(ln)
	}
	cutDirty := false
	if int(binary.LittleEndian.Uint16(fr.Data[8:10])) != int(resumeAt-firstIdx) || int(binary.LittleEndian.Uint16(fr.Data[10:12])) != off {
		binary.LittleEndian.PutUint16(fr.Data[8:10], uint16(resumeAt-firstIdx))
		binary.LittleEndian.PutUint16(fr.Data[10:12], uint16(off))
		cutDirty = true
	}
	pool.Unpin(fr, cutDirty)
	// Drop orphan pages past the cut so positional search never sees a
	// page that was not committed.
	if err := pool.Truncate(file, pg+1); err != nil {
		return nil, err
	}
	w.page = pg
	w.nrecs = int(resumeAt - firstIdx)
	w.used = off
	w.count = resumeAt
	// Reconstruct the running value-byte total for [0, resumeAt). The meta
	// page gives [0, metaCount) exactly when it matches; otherwise decode
	// the difference (short after a crash) or, if the meta page ran ahead
	// of the commit, recount from the start — rare, and still one
	// sequential read of the vector.
	switch {
	case metaCount == resumeAt:
		w.bytes = metaBytes
	case metaCount < resumeAt:
		extra, err := rangeValueBytes(pool, file, metaCount, resumeAt)
		if err != nil {
			return nil, err
		}
		w.bytes = metaBytes + extra
	default:
		total, err := rangeValueBytes(pool, file, 0, resumeAt)
		if err != nil {
			return nil, err
		}
		w.bytes = total
	}
	return w, nil
}

// rangeValueBytes sums the value bytes of records at positions in
// [from, to) by walking the data pages — the crash-recovery path of
// OpenAppendWriter. Every position in the range must be present.
func rangeValueBytes(pool *storage.BufferPool, file *storage.File, from, to int64) (int64, error) {
	var total int64
	covered := from
	for pg := int64(1); pg < file.NumPages() && covered < to; pg++ {
		fr, err := pool.Get(file, pg)
		if err != nil {
			return 0, err
		}
		firstIdx := int64(binary.LittleEndian.Uint64(fr.Data[0:8]))
		nrecs := int(binary.LittleEndian.Uint16(fr.Data[8:10]))
		used := int(binary.LittleEndian.Uint16(fr.Data[10:12]))
		if firstIdx+int64(nrecs) <= covered || firstIdx >= to {
			pool.Unpin(fr, false)
			continue
		}
		if used > payload {
			pool.Unpin(fr, false)
			return 0, fmt.Errorf("vector: %s: corrupt header on page %d (used %d > payload %d): %w", file.Path(), pg, used, payload, storage.ErrCorrupt)
		}
		limit := headerSize + used
		off := headerSize
		pos := firstIdx
		for r := 0; r < nrecs; r++ {
			ln, sz := binary.Uvarint(fr.Data[off:limit])
			if sz <= 0 || ln > uint64(limit-off-sz) {
				pool.Unpin(fr, false)
				return 0, fmt.Errorf("vector: %s: corrupt record on page %d: %w", file.Path(), pg, storage.ErrCorrupt)
			}
			off += sz + int(ln)
			if pos >= covered && pos < to {
				total += int64(ln)
				if pos == covered {
					covered++
				}
			}
			pos++
		}
		pool.Unpin(fr, false)
	}
	if covered < to {
		return 0, fmt.Errorf("vector: %s: records %d..%d missing from data pages: %w", file.Path(), covered, to, storage.ErrCorrupt)
	}
	return total, nil
}
