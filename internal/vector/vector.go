// Package vector implements data vectors — the V of the paper's vectorized
// representation VEC(T) = (S, V). A vector is the document-order sequence
// of text values appearing under one root-to-leaf tag path ("/bib/book/title").
//
// Vectors are stored uncompressed (the paper departs from XMILL here), one
// clustered paged file per vector, and are read lazily: a query touches
// only the vectors its operations scan, which is the system's central I/O
// win. Position i of a vector is exactly occurrence i of the corresponding
// text class (see internal/skeleton), so all engine operations are simple
// positional scans.
package vector

import (
	"context"
	"fmt"
	"sort"

	"vxml/internal/obs"
)

// Vector is a read-only sequence of values addressed by position.
type Vector interface {
	// Len returns the number of values.
	Len() int64
	// Scan calls fn for positions [start, start+n) in order. The val slice
	// is only valid during the call; fn must copy it to retain it.
	Scan(start, n int64, fn func(pos int64, val []byte) error) error
}

// Meterable is implemented by disk-backed vectors that can charge their
// page faults to a per-query obs.TaskMeter. Metered returns a view of
// the same vector attributing I/O to m — a cheap shallow copy, so the
// shared reader stays meter-free while each evaluation holds its own
// attributed view. Implementations accept a nil meter (the view then
// behaves exactly like the receiver).
type Meterable interface {
	Metered(m *obs.TaskMeter) Vector
}

// Contextual is implemented by disk-backed vectors whose page reads can
// honor a context: WithContext returns a view (a shallow copy, like
// Metered) whose transient-read retry backoff aborts when ctx is
// cancelled. A nil ctx view behaves exactly like the receiver.
type Contextual interface {
	WithContext(ctx context.Context) Vector
}

// Get is a convenience positional read returning a copy of one value.
func Get(v Vector, pos int64) (string, error) {
	var out string
	err := v.Scan(pos, 1, func(_ int64, val []byte) error {
		out = string(val)
		return nil
	})
	return out, err
}

// All materializes a whole vector as strings (tests and small results).
func All(v Vector) ([]string, error) {
	out := make([]string, 0, v.Len())
	err := v.Scan(0, v.Len(), func(_ int64, val []byte) error {
		out = append(out, string(val))
		return nil
	})
	return out, err
}

// Mem is an in-memory vector, used for freshly built query results and in
// tests. The zero value is an empty vector ready to append to.
type Mem struct {
	Values []string
}

// Append adds a value at the end.
func (m *Mem) Append(val string) { m.Values = append(m.Values, val) }

// Len implements Vector.
func (m *Mem) Len() int64 { return int64(len(m.Values)) }

// Scan implements Vector.
func (m *Mem) Scan(start, n int64, fn func(pos int64, val []byte) error) error {
	if start < 0 || start+n > int64(len(m.Values)) {
		return fmt.Errorf("vector: scan [%d,%d) out of range 0..%d", start, start+n, len(m.Values))
	}
	for i := start; i < start+n; i++ {
		if err := fn(i, []byte(m.Values[i])); err != nil {
			return err
		}
	}
	return nil
}

// Set is a collection of named vectors — the V half of VEC(T).
type Set interface {
	// Names returns all vector names, sorted.
	Names() []string
	// Vector opens the named vector. Implementations open lazily.
	Vector(name string) (Vector, error)
}

// CtxSet is an optional Set extension for request-attributed opens: the
// open itself does I/O (the meta page of a cold vector file), and VectorCtx
// charges that read to m and puts its transient-read retries on ctx's span.
// Sets that wrap other sets forward the attribution to their base.
type CtxSet interface {
	VectorCtx(ctx context.Context, m *obs.TaskMeter, name string) (Vector, error)
}

// OpenFrom resolves a set through CtxSet when the set supports it, so
// callers holding a request context and meter (the engine's vectorFor,
// wrapping sets forwarding to their base) get attributed opens from any
// Set without type-switching themselves.
func OpenFrom(ctx context.Context, m *obs.TaskMeter, s Set, name string) (Vector, error) {
	if cs, ok := s.(CtxSet); ok {
		return cs.VectorCtx(ctx, m, name)
	}
	return s.Vector(name)
}

// MemSet is an in-memory Set. The zero value is empty and ready to use
// after NewMemSet.
type MemSet struct {
	vecs map[string]*Mem
}

// NewMemSet returns an empty in-memory vector set.
func NewMemSet() *MemSet { return &MemSet{vecs: make(map[string]*Mem)} }

// Add registers (or returns the existing) vector with the given name.
func (s *MemSet) Add(name string) *Mem {
	if v, ok := s.vecs[name]; ok {
		return v
	}
	v := &Mem{}
	s.vecs[name] = v
	return v
}

// Names implements Set.
func (s *MemSet) Names() []string {
	out := make([]string, 0, len(s.vecs))
	for n := range s.vecs {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Vector implements Set.
func (s *MemSet) Vector(name string) (Vector, error) {
	v, ok := s.vecs[name]
	if !ok {
		return nil, fmt.Errorf("vector: no vector %q", name)
	}
	return v, nil
}

// TotalValues returns the number of values across all vectors of a set.
func TotalValues(s Set) (int64, error) {
	var total int64
	for _, name := range s.Names() {
		v, err := s.Vector(name)
		if err != nil {
			return 0, err
		}
		total += v.Len()
	}
	return total, nil
}

// TotalBytes returns the summed byte length of all values of a set (the
// paper's "Vectors' Size" column, measured on the raw values).
func TotalBytes(s Set) (int64, error) {
	var total int64
	for _, name := range s.Names() {
		v, err := s.Vector(name)
		if err != nil {
			return 0, err
		}
		err = v.Scan(0, v.Len(), func(_ int64, val []byte) error {
			total += int64(len(val))
			return nil
		})
		if err != nil {
			return 0, err
		}
	}
	return total, nil
}
