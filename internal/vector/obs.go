package vector

import "vxml/internal/obs"

// Vector-layer counters: pages consumed by scans (one increment per page
// of records walked, both formats) and bytes inflated by the compressed
// reader. Page granularity keeps the hot Scan loop free of per-value
// accounting — the per-evaluation value counts live in core.EvalStats.
var (
	obsPagesScanned  = obs.GetCounter("vector.pages_scanned")
	obsBytesInflated = obs.GetCounter("vector.bytes_inflated")
)
