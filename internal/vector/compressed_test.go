package vector

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"vxml/internal/storage"
)

func writeCompressed(t testing.TB, store *storage.Store, name string, vals []string) *CompressedPaged {
	t.Helper()
	f, err := store.Open(name)
	if err != nil {
		t.Fatal(err)
	}
	w, err := NewCompressedWriter(store.Pool(), f)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range vals {
		if err := w.AppendString(v); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	p, err := OpenCompressed(store.Pool(), f)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestCompressedRoundTrip(t *testing.T) {
	store, _ := newPool(t, 64)
	var vals []string
	for i := 0; i < 20000; i++ {
		vals = append(vals, fmt.Sprintf("value-%06d-%s", i, strings.Repeat("pad", i%5)))
	}
	p := writeCompressed(t, store, "cv", vals)
	if p.Len() != int64(len(vals)) {
		t.Fatalf("Len = %d", p.Len())
	}
	got, err := All(p)
	if err != nil {
		t.Fatal(err)
	}
	for i := range vals {
		if got[i] != vals[i] {
			t.Fatalf("val[%d] = %q, want %q", i, got[i], vals[i])
		}
	}
	// Compression must actually shrink redundant text.
	f, _ := store.Open("cv")
	if f.Size() >= p.ValueBytes() {
		t.Errorf("compressed file %d >= raw %d", f.Size(), p.ValueBytes())
	}
}

func TestCompressedPositionalScan(t *testing.T) {
	store, _ := newPool(t, 64)
	var vals []string
	for i := 0; i < 9000; i++ {
		vals = append(vals, fmt.Sprintf("row %d lorem ipsum dolor", i))
	}
	p := writeCompressed(t, store, "cv", vals)
	for _, start := range []int64{0, 1, 4321, 8999} {
		var got string
		if err := p.Scan(start, 1, func(pos int64, val []byte) error {
			got = string(val)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		if got != vals[start] {
			t.Errorf("val[%d] = %q", start, got)
		}
	}
	if err := p.Scan(8000, 2000, func(int64, []byte) error { return nil }); err == nil {
		t.Error("out-of-range scan succeeded")
	}
}

func TestCompressedIncompressibleData(t *testing.T) {
	store, _ := newPool(t, 256)
	r := rand.New(rand.NewSource(1))
	var vals []string
	for i := 0; i < 4000; i++ {
		b := make([]byte, 40)
		for j := range b {
			b[j] = byte(33 + r.Intn(90))
		}
		vals = append(vals, string(b))
	}
	p := writeCompressed(t, store, "cv", vals)
	got, err := All(p)
	if err != nil {
		t.Fatal(err)
	}
	for i := range vals {
		if got[i] != vals[i] {
			t.Fatalf("val[%d] mismatch", i)
		}
	}
}

func TestDiskSetCompressedRoundTrip(t *testing.T) {
	dir := t.TempDir()
	store, err := storage.OpenStore(dir, 64)
	if err != nil {
		t.Fatal(err)
	}
	set := CreateDiskSet(store)
	set.SetCompression(true)
	w, err := set.NewWriter("/doc/field")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5000; i++ {
		if err := w.AppendString(fmt.Sprintf("shared prefix %d", i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := set.CloseVector("/doc/field", w); err != nil {
		t.Fatal(err)
	}
	if err := set.Save(); err != nil {
		t.Fatal(err)
	}
	store.Close()

	store2, err := storage.OpenStore(dir, 64)
	if err != nil {
		t.Fatal(err)
	}
	defer store2.Close()
	set2, err := OpenDiskSet(store2)
	if err != nil {
		t.Fatal(err)
	}
	v, err := set2.Vector("/doc/field")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := v.(*CompressedPaged); !ok {
		t.Fatalf("reopened vector has type %T, want *CompressedPaged", v)
	}
	if v.Len() != 5000 {
		t.Errorf("len = %d", v.Len())
	}
	val, err := Get(v, 4999)
	if err != nil || val != "shared prefix 4999" {
		t.Errorf("Get = %q, %v", val, err)
	}
}

// TestPropertyCompressedMatchesMem mirrors the uncompressed property test.
func TestPropertyCompressedMatchesMem(t *testing.T) {
	store, _ := newPool(t, 64)
	seq := 0
	f := func(seed int64) bool {
		seq++
		r := rand.New(rand.NewSource(seed))
		n := r.Intn(2000)
		vals := make([]string, n)
		for i := range vals {
			vals[i] = strings.Repeat("x", r.Intn(60)) + fmt.Sprint(i)
		}
		p := writeCompressed(t, store, fmt.Sprintf("pcv%d", seq), vals)
		m := &Mem{Values: vals}
		for trial := 0; trial < 8; trial++ {
			start := int64(0)
			if n > 0 {
				start = int64(r.Intn(n))
			}
			cnt := int64(0)
			if rem := int64(n) - start; rem > 0 {
				cnt = int64(r.Int63n(rem))
			}
			var a, b []string
			p.Scan(start, cnt, func(_ int64, v []byte) error { a = append(a, string(v)); return nil })
			m.Scan(start, cnt, func(_ int64, v []byte) error { b = append(b, string(v)); return nil })
			if strings.Join(a, "\x00") != strings.Join(b, "\x00") {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
