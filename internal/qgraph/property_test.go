package qgraph

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"vxml/internal/xq"
)

// genRandomQuery builds structurally valid random XQ text.
func genRandomQuery(r *rand.Rand) string {
	tags := []string{"a", "b", "c", "d"}
	path := func() string {
		n := 1 + r.Intn(3)
		parts := make([]string, n)
		for i := range parts {
			parts[i] = tags[r.Intn(len(tags))]
		}
		return strings.Join(parts, "/")
	}
	var b strings.Builder
	nvars := 1 + r.Intn(3)
	fmt.Fprintf(&b, "for $v0 in /root/%s", path())
	for i := 1; i < nvars; i++ {
		if r.Intn(2) == 0 {
			fmt.Fprintf(&b, ", $v%d in $v%d/%s", i, r.Intn(i), path())
		} else {
			fmt.Fprintf(&b, ", $v%d in /root/%s", i, path())
		}
	}
	var conds []string
	for i := 0; i < r.Intn(3); i++ {
		l := r.Intn(nvars)
		switch r.Intn(2) {
		case 0:
			conds = append(conds, fmt.Sprintf("$v%d/%s = 'k'", l, path()))
		default:
			conds = append(conds, fmt.Sprintf("$v%d/%s = $v%d/%s", l, path(), r.Intn(nvars), path()))
		}
	}
	if len(conds) > 0 {
		b.WriteString(" where " + strings.Join(conds, " and "))
	}
	fmt.Fprintf(&b, " return $v%d", r.Intn(nvars))
	return b.String()
}

// TestPropertyPlanInvariants: for random queries, the plan (1) defines
// every variable before use, (2) schedules ready selections before any
// join, (3) annotates each non-output variable's drop exactly once, and
// (4) never drops an output variable.
func TestPropertyPlanInvariants(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		src := genRandomQuery(r)
		q, err := xq.Parse(src)
		if err != nil {
			t.Logf("seed %d: parse %q: %v", seed, src, err)
			return false
		}
		plan, err := Build(q)
		if err != nil {
			t.Logf("seed %d: build %q: %v", seed, src, err)
			return false
		}
		output := map[string]bool{}
		for _, v := range plan.OutputVars {
			output[v] = true
		}
		defined := map[string]bool{}
		dropped := map[string]int{}
		seenJoin := false
		for _, op := range plan.Ops {
			switch op.Kind {
			case OpBind:
				defined[op.Var] = true
			case OpProj:
				if !defined[op.Src] {
					t.Logf("seed %d: %s uses undefined %s", seed, op, op.Src)
					return false
				}
				defined[op.Var] = true
			case OpSel, OpExists:
				if !defined[op.Var] {
					return false
				}
				if seenJoin {
					// A selection after a join must not have been ready
					// before it: its variable must be defined only by a
					// projection that itself follows the join. Our
					// generator defines all variables up front, so any
					// post-join selection is an ordering violation.
					t.Logf("seed %d: selection after join in %q:\n%s", seed, src, plan)
					return false
				}
			case OpJoin:
				if !defined[op.Var] || !defined[op.RVar] {
					return false
				}
				seenJoin = true
			}
			for _, v := range op.DropAfter {
				dropped[v]++
				if output[v] {
					t.Logf("seed %d: output var %s dropped", seed, v)
					return false
				}
			}
		}
		for v, n := range dropped {
			if n != 1 {
				t.Logf("seed %d: %s dropped %d times", seed, v, n)
				return false
			}
		}
		// Every defined non-output variable is dropped somewhere.
		for v := range defined {
			if !output[v] && dropped[v] == 0 {
				t.Logf("seed %d: %s leaks (never dropped)\n%s", seed, v, plan)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
