// Package qgraph compiles a parsed XQ query into the paper's query-graph
// form (§3.3) and orders its operations for graph reduction (§4.1).
//
// The query graph's tree edges become projection operations (instantiate a
// variable from its parent), edges to constants become selections, and
// equality edges become joins. Qualifiers are desugared into hidden
// variables plus selection/existence operations (the paper's
// "w.l.o.g. queries without XPath qualifiers"), and redundant intermediate
// variables are shortcut at compile time by keeping multi-step paths as
// single edges. Operations are topologically sorted respecting variable
// dependencies with the relational heuristic of performing selections (and
// existence filters) before joins; liveness annotations tell the engine
// when a column can be dropped from an instantiation table.
package qgraph

import (
	"fmt"
	"strings"

	"vxml/internal/xq"
)

// OpKind enumerates graph-reduction operations.
type OpKind uint8

const (
	// OpBind instantiates a variable from the document root (a tree edge
	// out of the doc node).
	OpBind OpKind = iota
	// OpProj instantiates a variable from another variable (projection).
	OpProj
	// OpSel filters a variable by comparing values under a path with a
	// constant (selection).
	OpSel
	// OpExists filters a variable by existence of a path (the paper's
	// author($b,_) with an unnamed end point).
	OpExists
	// OpJoin filters (and, across tables, pairs) two variables by
	// comparing the values under their paths (equality edge).
	OpJoin
)

func (k OpKind) String() string {
	switch k {
	case OpBind:
		return "bind"
	case OpProj:
		return "proj"
	case OpSel:
		return "sel"
	case OpExists:
		return "exists"
	case OpJoin:
		return "join"
	}
	return "?"
}

// Op is one graph-reduction operation.
type Op struct {
	Kind OpKind
	// Var is the variable defined (Bind/Proj) or filtered (Sel/Exists) or
	// the left side of a join.
	Var string
	// Src is the source variable of a projection.
	Src string
	// Path is the step sequence: Bind/Proj traverse it; Sel/Exists test it;
	// for joins it is the left path.
	Path []xq.Step
	// Cmp/Value: Sel compares path values with Value; Join compares left
	// and right path values (Value unused).
	Cmp   xq.CmpOp
	Value string
	// RVar/RPath: the right side of a join.
	RVar  string
	RPath []xq.Step

	// DropAfter lists variables whose last use is this operation and that
	// are not output variables: the engine drops their columns afterwards.
	DropAfter []string
}

func (o Op) String() string {
	var b strings.Builder
	switch o.Kind {
	case OpBind:
		fmt.Fprintf(&b, "bind %s := doc%s", o.Var, pathString(o.Path))
	case OpProj:
		fmt.Fprintf(&b, "proj %s := %s%s", o.Var, o.Src, pathString(o.Path))
	case OpSel:
		fmt.Fprintf(&b, "sel %s%s %s '%s'", o.Var, pathString(o.Path), o.Cmp, o.Value)
	case OpExists:
		fmt.Fprintf(&b, "exists %s%s", o.Var, pathString(o.Path))
	case OpJoin:
		fmt.Fprintf(&b, "join %s%s %s %s%s", o.Var, pathString(o.Path), o.Cmp, o.RVar, pathString(o.RPath))
	}
	if len(o.DropAfter) > 0 {
		fmt.Fprintf(&b, " [drop %s]", strings.Join(o.DropAfter, ","))
	}
	return b.String()
}

func pathString(steps []xq.Step) string {
	return xq.Path{Steps: steps}.String()
}

// Plan is the ordered operation list plus the result template.
type Plan struct {
	Ops []Op
	// OutputVars are the variables the return expression references, in
	// first-reference order.
	OutputVars []string
	// BoundVars are the for-variables plus hidden qualifier variables, in
	// definition order (every Bind/Proj target).
	BoundVars []string
	ResultTag string
	Return    []xq.RetItem
}

// String renders the plan for explain output and tests.
func (p *Plan) String() string {
	var b strings.Builder
	for i, op := range p.Ops {
		fmt.Fprintf(&b, "%2d. %s\n", i+1, op)
	}
	fmt.Fprintf(&b, "output: %s", strings.Join(p.OutputVars, ", "))
	return b.String()
}

// builder accumulates operations before ordering.
type builder struct {
	ops    []Op
	hidden int
	// defined tracks variables with a defining op.
	defined map[string]bool
}

func (b *builder) fresh() string {
	b.hidden++
	return fmt.Sprintf("$.h%d", b.hidden)
}

// Options tunes plan construction.
type Options struct {
	// SourceOrder disables the selection-first reordering heuristic:
	// operations run in dependency-respecting source order (an ablation).
	SourceOrder bool
}

// Build compiles a query into an ordered, liveness-annotated plan with
// the default selection-first heuristics.
func Build(q *xq.Query) (*Plan, error) { return BuildWithOptions(q, Options{}) }

// BuildWithOptions compiles a query with explicit planner options.
func BuildWithOptions(q *xq.Query, opts Options) (*Plan, error) {
	b := &builder{defined: map[string]bool{}}
	plan := &Plan{ResultTag: q.ResultTag, Return: q.Return}

	// Bindings: tree edges (splitting at qualifier attachment points).
	for _, bind := range q.Bindings {
		if b.defined[bind.Var] {
			return nil, fmt.Errorf("qgraph: duplicate variable %s", bind.Var)
		}
		if err := b.addPathTerm(bind.Var, bind.Term); err != nil {
			return nil, err
		}
	}

	// Where conditions: selections and joins.
	for _, cond := range q.Conds {
		if err := b.addCond(cond); err != nil {
			return nil, err
		}
	}

	// Output variables from the return expression.
	seen := map[string]bool{}
	var walkRet func(items []xq.RetItem) error
	walkRet = func(items []xq.RetItem) error {
		for _, it := range items {
			switch it := it.(type) {
			case xq.RetPath:
				v := it.Term.Var
				if v == "" {
					return fmt.Errorf("qgraph: return item must be variable-rooted, got %s", it.Term)
				}
				if !b.defined[v] {
					return fmt.Errorf("qgraph: return references undefined variable %s", v)
				}
				if hasQuals(it.Term.Path.Steps) {
					return fmt.Errorf("qgraph: qualifiers in return paths are not supported (%s)", it.Term)
				}
				if !seen[v] {
					seen[v] = true
					plan.OutputVars = append(plan.OutputVars, v)
				}
			case xq.RetElem:
				if err := walkRet(it.Kids); err != nil {
					return err
				}
			}
		}
		return nil
	}
	if err := walkRet(q.Return); err != nil {
		return nil, err
	}

	ordered, err := order(b.ops, opts.SourceOrder)
	if err != nil {
		return nil, err
	}
	plan.Ops = ordered
	for _, op := range plan.Ops {
		if op.Kind == OpBind || op.Kind == OpProj {
			plan.BoundVars = append(plan.BoundVars, op.Var)
		}
	}
	annotateLiveness(plan)
	return plan, nil
}

// addPathTerm defines target as term, splitting at qualifier points into
// hidden variables with attached filter operations.
func (b *builder) addPathTerm(target string, term xq.PathTerm) error {
	src := term.Var // "" means document root
	if src != "" && !b.defined[src] {
		return fmt.Errorf("qgraph: %s references undefined variable %s", target, src)
	}
	steps := term.Path.Steps
	if src == "" && len(steps) == 0 {
		return fmt.Errorf("qgraph: %s bound to bare document root", target)
	}
	// Walk steps; each step carrying qualifiers ends a segment at a hidden
	// variable that the qualifier ops filter.
	cur := src
	seg := []xq.Step{}
	flush := func(v string) {
		clean := make([]xq.Step, len(seg))
		for i, s := range seg {
			s.Quals = nil
			clean[i] = s
		}
		if cur == "" {
			b.ops = append(b.ops, Op{Kind: OpBind, Var: v, Path: clean})
		} else {
			b.ops = append(b.ops, Op{Kind: OpProj, Var: v, Src: cur, Path: clean})
		}
		b.defined[v] = true
		cur, seg = v, nil
	}
	for i, s := range steps {
		seg = append(seg, s)
		last := i == len(steps)-1
		if len(s.Quals) == 0 && !last {
			continue
		}
		v := target
		if !last {
			v = b.fresh()
		}
		flush(v)
		for _, qual := range s.Quals {
			if err := b.addQual(v, qual); err != nil {
				return err
			}
		}
	}
	if len(steps) == 0 {
		// Alias: target is the same node set as src. Model as a
		// zero-step projection.
		b.ops = append(b.ops, Op{Kind: OpProj, Var: target, Src: src})
		b.defined[target] = true
	}
	return nil
}

func (b *builder) addQual(v string, qual xq.Qual) error {
	if hasQuals(qual.Path.Steps) {
		return fmt.Errorf("qgraph: nested qualifiers are not supported")
	}
	if qual.Op == xq.OpNone {
		b.ops = append(b.ops, Op{Kind: OpExists, Var: v, Path: qual.Path.Steps})
		return nil
	}
	b.ops = append(b.ops, Op{Kind: OpSel, Var: v, Path: qual.Path.Steps, Cmp: qual.Op, Value: qual.Value})
	return nil
}

func (b *builder) addCond(c xq.Cond) error {
	// Normalize: constant on the right.
	l, r, op := c.Left, c.Right, c.Op
	if l.Term == nil && r.Term == nil {
		return fmt.Errorf("qgraph: condition compares two constants")
	}
	if l.Term == nil {
		l, r = r, l
		op = flip(op)
	}
	lv, lpath, err := b.condSide(*l.Term)
	if err != nil {
		return err
	}
	if r.Term == nil {
		b.ops = append(b.ops, Op{Kind: OpSel, Var: lv, Path: lpath, Cmp: op, Value: r.Const})
		return nil
	}
	rv, rpath, err := b.condSide(*r.Term)
	if err != nil {
		return err
	}
	b.ops = append(b.ops, Op{Kind: OpJoin, Var: lv, Path: lpath, Cmp: op, RVar: rv, RPath: rpath})
	return nil
}

// condSide resolves a condition operand to (variable, relative path),
// introducing a hidden binding for document-rooted operands.
func (b *builder) condSide(term xq.PathTerm) (string, []xq.Step, error) {
	if hasQuals(term.Path.Steps) {
		return "", nil, fmt.Errorf("qgraph: qualifiers inside conditions are not supported (%s)", term)
	}
	if term.Var != "" {
		if !b.defined[term.Var] {
			return "", nil, fmt.Errorf("qgraph: condition references undefined variable %s", term.Var)
		}
		return term.Var, term.Path.Steps, nil
	}
	v := b.fresh()
	if err := b.addPathTerm(v, xq.PathTerm{Path: xq.Path{Steps: term.Path.Steps}}); err != nil {
		return "", nil, err
	}
	return v, nil, nil
}

func hasQuals(steps []xq.Step) bool {
	for _, s := range steps {
		if len(s.Quals) > 0 {
			return true
		}
	}
	return false
}

func flip(op xq.CmpOp) xq.CmpOp {
	switch op {
	case xq.OpLt:
		return xq.OpGt
	case xq.OpLe:
		return xq.OpGe
	case xq.OpGt:
		return xq.OpLt
	case xq.OpGe:
		return xq.OpLe
	}
	return op
}

// order topologically sorts operations respecting variable dependencies,
// preferring cheap filters early: ready selections and existence tests run
// before projections, and joins run last (the paper's §4.1 heuristic,
// cf. Example 4.1 where publisher($b,'SBP') is scheduled before the
// author equality join).
func order(ops []Op, sourceOrder bool) ([]Op, error) {
	defined := map[string]bool{}
	done := make([]bool, len(ops))
	var out []Op
	ready := func(op Op) bool {
		switch op.Kind {
		case OpBind:
			return true
		case OpProj:
			return defined[op.Src]
		case OpSel, OpExists:
			return defined[op.Var]
		case OpJoin:
			return defined[op.Var] && defined[op.RVar]
		}
		return false
	}
	for len(out) < len(ops) {
		pick := -1
		bestRank := 99
		for i, op := range ops {
			if done[i] || !ready(op) {
				continue
			}
			rank := opRank(op.Kind)
			if sourceOrder {
				rank = 0 // first ready op in source order wins
			}
			if rank < bestRank {
				bestRank, pick = rank, i
			}
			if sourceOrder {
				break
			}
		}
		if pick == -1 {
			return nil, fmt.Errorf("qgraph: cyclic or unsatisfiable dependencies")
		}
		done[pick] = true
		op := ops[pick]
		if op.Kind == OpBind || op.Kind == OpProj {
			defined[op.Var] = true
		}
		out = append(out, op)
	}
	return out, nil
}

func opRank(k OpKind) int {
	switch k {
	case OpSel:
		return 0
	case OpExists:
		return 1
	case OpBind:
		return 2
	case OpProj:
		return 3
	case OpJoin:
		return 4
	}
	return 9
}

// annotateLiveness records, per operation, the variables whose last use is
// that operation and that the return expression does not need.
func annotateLiveness(p *Plan) {
	output := map[string]bool{}
	for _, v := range p.OutputVars {
		output[v] = true
	}
	lastUse := map[string]int{}
	use := func(v string, i int) {
		if v != "" {
			lastUse[v] = i
		}
	}
	for i, op := range p.Ops {
		use(op.Var, i)
		use(op.Src, i)
		use(op.RVar, i)
	}
	for v, i := range lastUse {
		if output[v] {
			continue
		}
		p.Ops[i].DropAfter = append(p.Ops[i].DropAfter, v)
	}
	for i := range p.Ops {
		sortStrings(p.Ops[i].DropAfter)
	}
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
