package qgraph

import (
	"fmt"
	"strings"
)

// Graph is the paper's query-graph view (Fig. 3(c)) of a plan: a rooted
// DAG with a doc node, variable nodes, constant nodes, tree edges labeled
// with paths and dotted equality edges. It exists for explain output and
// tests; the engine executes the Plan directly.
type Graph struct {
	TreeEdges []GraphEdge
	EqEdges   []GraphEdge
}

// GraphEdge is one edge of the query-graph view.
type GraphEdge struct {
	From, To string
	Label    string
}

// GraphOf derives the query-graph view from a plan.
func GraphOf(p *Plan) *Graph {
	g := &Graph{}
	for _, op := range p.Ops {
		switch op.Kind {
		case OpBind:
			g.TreeEdges = append(g.TreeEdges, GraphEdge{From: "doc", To: op.Var, Label: pathString(op.Path)})
		case OpProj:
			g.TreeEdges = append(g.TreeEdges, GraphEdge{From: op.Src, To: op.Var, Label: pathString(op.Path)})
		case OpSel:
			g.TreeEdges = append(g.TreeEdges, GraphEdge{From: op.Var, To: fmt.Sprintf("'%s'", op.Value), Label: pathString(op.Path)})
		case OpExists:
			g.TreeEdges = append(g.TreeEdges, GraphEdge{From: op.Var, To: "_", Label: pathString(op.Path)})
		case OpJoin:
			g.EqEdges = append(g.EqEdges, GraphEdge{
				From:  op.Var + pathString(op.Path),
				To:    op.RVar + pathString(op.RPath),
				Label: op.Cmp.String(),
			})
		}
	}
	return g
}

// String renders the graph in a compact text form.
func (g *Graph) String() string {
	var b strings.Builder
	for _, e := range g.TreeEdges {
		fmt.Fprintf(&b, "%s --%s--> %s\n", e.From, e.Label, e.To)
	}
	for _, e := range g.EqEdges {
		fmt.Fprintf(&b, "%s ..%s.. %s\n", e.From, e.Label, e.To)
	}
	return b.String()
}

// Dot renders the graph in Graphviz dot syntax (circle nodes for
// variables, boxes for end points/constants, dotted equality edges).
func (g *Graph) Dot() string {
	var b strings.Builder
	b.WriteString("digraph query {\n  rankdir=TB;\n")
	for _, e := range g.TreeEdges {
		fmt.Fprintf(&b, "  %q -> %q [label=%q];\n", e.From, e.To, e.Label)
	}
	for _, e := range g.EqEdges {
		fmt.Fprintf(&b, "  %q -> %q [style=dotted, dir=none, label=%q];\n", e.From, e.To, e.Label)
	}
	b.WriteString("}\n")
	return b.String()
}
