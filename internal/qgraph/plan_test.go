package qgraph

import (
	"strings"
	"testing"

	"vxml/internal/xq"
)

func build(t *testing.T, src string) *Plan {
	t.Helper()
	q, err := xq.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	p, err := Build(q)
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	return p
}

// TestQ0Plan mirrors the paper's Example 4.1: the selection on publisher
// is scheduled before the author join, and the plan's operations match
// the reduction sequence.
func TestQ0Plan(t *testing.T) {
	p := build(t, `<result>
for $d in doc("bib.xml")/bib, $b in $d/book, $a in $d/article
where $b/author = $a/author and $b/publisher = 'SBP'
return $b/title, $a/title
</result>`)
	var kinds []string
	for _, op := range p.Ops {
		kinds = append(kinds, op.Kind.String())
	}
	got := strings.Join(kinds, " ")
	// bind $d, proj $b, sel publisher (ASAP after $b), proj $a, join.
	want := "bind proj sel proj join"
	if got != want {
		t.Errorf("op order = %s, want %s\n%s", got, want, p)
	}
	if p.Ops[2].Kind != OpSel || p.Ops[2].Value != "SBP" || p.Ops[2].Var != "$b" {
		t.Errorf("sel op = %+v", p.Ops[2])
	}
	if len(p.OutputVars) != 2 || p.OutputVars[0] != "$b" || p.OutputVars[1] != "$a" {
		t.Errorf("output vars = %v", p.OutputVars)
	}
	// $d is not an output var: dropped at its last use (proj $a).
	projA := p.Ops[3]
	if projA.Var != "$a" || len(projA.DropAfter) != 1 || projA.DropAfter[0] != "$d" {
		t.Errorf("proj $a = %+v", projA)
	}
}

func TestQualifierDesugaring(t *testing.T) {
	p := build(t, `/alltreebank/FILE/EMPTY/S/NP[JJ='Federal']`)
	// bind $x := doc/alltreebank/FILE/EMPTY/S/NP, then sel $x/JJ = Federal.
	if len(p.Ops) != 2 {
		t.Fatalf("ops:\n%s", p)
	}
	if p.Ops[0].Kind != OpBind || len(p.Ops[0].Path) != 5 {
		t.Errorf("op0 = %+v", p.Ops[0])
	}
	if p.Ops[1].Kind != OpSel || p.Ops[1].Var != "$x" || p.Ops[1].Value != "Federal" {
		t.Errorf("op1 = %+v", p.Ops[1])
	}
}

func TestMidPathQualifierCreatesHiddenVar(t *testing.T) {
	p := build(t, `for $x in /a/b[c='v']/d return $x`)
	// bind $.h1 := doc/a/b; sel $.h1/c = v; proj $x := $.h1/d.
	if len(p.Ops) != 3 {
		t.Fatalf("ops:\n%s", p)
	}
	if p.Ops[0].Kind != OpBind || !strings.HasPrefix(p.Ops[0].Var, "$.h") {
		t.Errorf("op0 = %+v", p.Ops[0])
	}
	if p.Ops[1].Kind != OpSel || p.Ops[1].Var != p.Ops[0].Var {
		t.Errorf("op1 = %+v", p.Ops[1])
	}
	if p.Ops[2].Kind != OpProj || p.Ops[2].Src != p.Ops[0].Var || p.Ops[2].Var != "$x" {
		t.Errorf("op2 = %+v", p.Ops[2])
	}
	// Hidden var dies at the projection.
	if len(p.Ops[2].DropAfter) != 1 {
		t.Errorf("DropAfter = %v", p.Ops[2].DropAfter)
	}
}

func TestExistenceQualifier(t *testing.T) {
	p := build(t, `/site/people/person[profile]`)
	if len(p.Ops) != 2 || p.Ops[1].Kind != OpExists {
		t.Fatalf("ops:\n%s", p)
	}
}

func TestDocRootedConditionOperand(t *testing.T) {
	p := build(t, `for $x in /a/b where $x/v = /a/c/v return $x`)
	// The doc-rooted operand becomes a hidden bind + join.
	var hasJoin, hasHiddenBind bool
	for _, op := range p.Ops {
		if op.Kind == OpJoin {
			hasJoin = true
		}
		if op.Kind == OpBind && strings.HasPrefix(op.Var, "$.h") {
			hasHiddenBind = true
		}
	}
	if !hasJoin || !hasHiddenBind {
		t.Errorf("plan:\n%s", p)
	}
}

func TestConstantOnLeftFlips(t *testing.T) {
	p := build(t, `for $x in /a where 40 < $x/p return $x`)
	var sel *Op
	for i := range p.Ops {
		if p.Ops[i].Kind == OpSel {
			sel = &p.Ops[i]
		}
	}
	if sel == nil {
		t.Fatalf("no selection:\n%s", p)
	}
	if sel.Cmp != xq.OpGt || sel.Value != "40" {
		t.Errorf("sel = %+v", sel)
	}
}

func TestVariableAlias(t *testing.T) {
	p := build(t, `for $x in /a/b, $y in $x return $y`)
	var alias *Op
	for i := range p.Ops {
		op := &p.Ops[i]
		if op.Kind == OpProj && op.Var == "$y" {
			alias = op
		}
	}
	if alias == nil || alias.Src != "$x" || len(alias.Path) != 0 {
		t.Errorf("alias = %+v\n%s", alias, p)
	}
}

func TestSelectionsBeforeJoins(t *testing.T) {
	p := build(t, `for $a in /s/a, $b in /s/b
where $a/k = $b/k and $a/t = 'x' and $b/u = 'y'
return $a, $b`)
	joinIdx, lastSel := -1, -1
	for i, op := range p.Ops {
		switch op.Kind {
		case OpJoin:
			joinIdx = i
		case OpSel:
			lastSel = i
		}
	}
	if joinIdx < lastSel {
		t.Errorf("join at %d before selection at %d:\n%s", joinIdx, lastSel, p)
	}
}

func TestBuildErrors(t *testing.T) {
	bad := []string{
		`for $x in /a, $x in /b return $x`,             // duplicate var
		`for $x in $y/p return $x`,                     // undefined source
		`for $x in /a where $y/p = 'v' return $x`,      // undefined in cond
		`for $x in /a where 'a' = 'b' return $x`,       // two constants
		`for $x in /a return $y`,                       // undefined in return
		`for $x in /a return $x/b[c='v']`,              // qualifier in return
		`for $x in /a where $x/b[c='v'] = 1 return $x`, // qualifier in cond
	}
	for _, src := range bad {
		q, err := xq.Parse(src)
		if err != nil {
			t.Errorf("parse(%q): %v", src, err)
			continue
		}
		if _, err := Build(q); err == nil {
			t.Errorf("Build(%q) succeeded, want error", src)
		}
	}
}

func TestGraphView(t *testing.T) {
	p := build(t, `<result>
for $d in doc("bib.xml")/bib, $b in $d/book, $a in $d/article
where $b/author = $a/author and $b/publisher = 'SBP'
return $b/title, $a/title
</result>`)
	g := GraphOf(p)
	s := g.String()
	for _, want := range []string{
		"doc --/bib--> $d",
		"$d --/book--> $b",
		"$d --/article--> $a",
		"$b --/publisher--> 'SBP'",
		"$b/author ..=.. $a/author",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("graph missing %q:\n%s", want, s)
		}
	}
	dot := g.Dot()
	if !strings.Contains(dot, "digraph") || !strings.Contains(dot, "style=dotted") {
		t.Errorf("dot output:\n%s", dot)
	}
}

func TestBoundVarsOrder(t *testing.T) {
	p := build(t, `for $a in /s/a, $b in $a/b return $b`)
	if len(p.BoundVars) != 2 || p.BoundVars[0] != "$a" || p.BoundVars[1] != "$b" {
		t.Errorf("BoundVars = %v", p.BoundVars)
	}
}
