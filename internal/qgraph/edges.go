package qgraph

import (
	"fmt"

	"vxml/internal/xq"
)

// A PathEdge is one path-labelled edge of the query graph, extracted from
// the plan for static checking: the step sequence an operation must be able
// to traverse through the repository's path catalog for the query to
// produce anything. Because every plan operation is conjunctive (a bind,
// projection, selection, existence test, or join can only narrow the
// instantiation set), a single edge with no matching catalog path makes the
// whole query statically empty.
type PathEdge struct {
	// OpIndex is the position in Plan.Ops this edge came from.
	OpIndex int
	Kind    OpKind
	// Src is the variable the path starts from; "" for a document-rooted
	// bind. Dst is the variable the edge introduces (bind/proj), else "".
	Src string
	Dst string
	// Path is the edge's step sequence. It may be empty (a join or
	// selection on the variable's own value).
	Path []xq.Step
	// Value reports that the edge compares text values (sel/join): its
	// targets must have text children, not merely exist.
	Value bool
}

// String renders the edge the way the plan renders the operation it came
// from, e.g. "bind $b := doc/bib/book" or "join $a/title".
func (pe PathEdge) String() string {
	switch pe.Kind {
	case OpBind:
		return fmt.Sprintf("bind %s := doc%s", pe.Dst, pathString(pe.Path))
	case OpProj:
		return fmt.Sprintf("proj %s := %s%s", pe.Dst, pe.Src, pathString(pe.Path))
	default:
		return fmt.Sprintf("%s %s%s", pe.Kind, pe.Src, pathString(pe.Path))
	}
}

// PathEdges extracts every path edge of the plan, in execution order. Joins
// contribute two edges (left and right side).
func (p *Plan) PathEdges() []PathEdge {
	var edges []PathEdge
	for i, op := range p.Ops {
		switch op.Kind {
		case OpBind:
			edges = append(edges, PathEdge{OpIndex: i, Kind: OpBind, Dst: op.Var, Path: op.Path})
		case OpProj:
			edges = append(edges, PathEdge{OpIndex: i, Kind: OpProj, Src: op.Src, Dst: op.Var, Path: op.Path})
		case OpSel:
			edges = append(edges, PathEdge{OpIndex: i, Kind: OpSel, Src: op.Var, Path: op.Path, Value: true})
		case OpExists:
			edges = append(edges, PathEdge{OpIndex: i, Kind: OpExists, Src: op.Var, Path: op.Path})
		case OpJoin:
			edges = append(edges,
				PathEdge{OpIndex: i, Kind: OpJoin, Src: op.Var, Path: op.Path, Value: true},
				PathEdge{OpIndex: i, Kind: OpJoin, Src: op.RVar, Path: op.RPath, Value: true})
		}
	}
	return edges
}
