package qgraph

import (
	"testing"

	"vxml/internal/xq"
)

func edgesFor(t *testing.T, src string) []PathEdge {
	t.Helper()
	q, err := xq.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	plan, err := Build(q)
	if err != nil {
		t.Fatalf("plan: %v", err)
	}
	return plan.PathEdges()
}

// Every op kind contributes its path edges, joins two of them, and the
// rendering matches the plan's own op syntax.
func TestPathEdges(t *testing.T) {
	edges := edgesFor(t,
		`for $b in /bib/book where $b/publisher = 'SBP' return $b/title`)
	want := []string{
		"bind $b := doc/bib/book",
		"sel $b/publisher",
	}
	if len(edges) != len(want) {
		t.Fatalf("got %d edges, want %d: %v", len(edges), len(want), edges)
	}
	for i, w := range want {
		if got := edges[i].String(); got != w {
			t.Errorf("edge %d = %q, want %q", i, got, w)
		}
	}
	if !edges[1].Value {
		t.Error("sel edge must be a value edge")
	}
	if edges[0].Value {
		t.Error("bind edge must not be a value edge")
	}
}

func TestPathEdgesJoinContributesBothSides(t *testing.T) {
	edges := edgesFor(t, `for $a in /bib/book, $b in /bib/book
		where $a/author = $b/author return $a/title`)
	var joins []PathEdge
	for _, e := range edges {
		if e.Kind == OpJoin {
			joins = append(joins, e)
		}
	}
	if len(joins) != 2 {
		t.Fatalf("got %d join edges, want 2 (left and right): %v", len(joins), edges)
	}
	if joins[0].OpIndex != joins[1].OpIndex {
		t.Errorf("join edges from different ops: %d vs %d", joins[0].OpIndex, joins[1].OpIndex)
	}
	for _, j := range joins {
		if !j.Value {
			t.Errorf("join edge %s must be a value edge", j)
		}
	}
}

func TestPathEdgesHiddenVarProjection(t *testing.T) {
	edges := edgesFor(t, `for $x in /bib/*[author]//title return $x`)
	want := []string{
		"bind $.h1 := doc/bib/*",
		"exists $.h1/author",
		"proj $x := $.h1//title",
	}
	if len(edges) != len(want) {
		t.Fatalf("got %d edges, want %d: %v", len(edges), len(want), edges)
	}
	for i, w := range want {
		if got := edges[i].String(); got != w {
			t.Errorf("edge %d = %q, want %q", i, got, w)
		}
	}
	if edges[2].Src != "$.h1" || edges[2].Dst != "$x" {
		t.Errorf("proj edge src/dst = %q/%q, want $.h1/$x", edges[2].Src, edges[2].Dst)
	}
}
