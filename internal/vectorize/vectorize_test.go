package vectorize

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"testing/quick"

	"vxml/internal/vector"
	"vxml/internal/xmlmodel"
)

const bibXML = `<bib>
  <book><publisher>SBP</publisher><author>RH</author><title>Curation</title></book>
  <book><publisher>SBP</publisher><author>RH</author><title>XML</title></book>
  <book><publisher>AW</publisher><author>SB</author><title>AXML</title></book>
  <article><author>BC</author><title>P2P</title></article>
  <article><author>RH</author><author>BC</author><title>XStore</title></article>
  <article><author>DD</author><author>RH</author><title>XPath</title></article>
</bib>`

// TestFig2Vectors checks the exact decomposition of the paper's Fig. 2(b).
func TestFig2Vectors(t *testing.T) {
	syms := xmlmodel.NewSymbols()
	repo, err := FromString(bibXML, syms)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string][]string{
		"/bib/book/publisher": {"SBP", "SBP", "AW"},
		"/bib/book/author":    {"RH", "RH", "SB"},
		"/bib/book/title":     {"Curation", "XML", "AXML"},
		"/bib/article/author": {"BC", "RH", "BC", "DD", "RH"},
		"/bib/article/title":  {"P2P", "XStore", "XPath"},
	}
	names := repo.Vectors.Names()
	if len(names) != len(want) {
		t.Fatalf("vectors = %v", names)
	}
	for name, vals := range want {
		v, err := repo.Vectors.Vector(name)
		if err != nil {
			t.Fatalf("vector %s: %v", name, err)
		}
		got, err := vector.All(v)
		if err != nil {
			t.Fatal(err)
		}
		if strings.Join(got, ",") != strings.Join(vals, ",") {
			t.Errorf("%s = %v, want %v", name, got, vals)
		}
	}
	// Fig. 2(a): 8 unique nodes, 13 edges.
	if repo.Skel.NumNodes() != 8 || repo.Skel.NumEdges() != 13 {
		t.Errorf("skeleton = %d nodes / %d edges, want 8/13", repo.Skel.NumNodes(), repo.Skel.NumEdges())
	}
}

func TestReconstructBib(t *testing.T) {
	syms := xmlmodel.NewSymbols()
	orig, err := xmlmodel.ParseString(bibXML, syms)
	if err != nil {
		t.Fatal(err)
	}
	repo, err := FromTree(orig, syms)
	if err != nil {
		t.Fatal(err)
	}
	back, err := ReconstructTree(repo.Skel, repo.Classes, repo.Vectors)
	if err != nil {
		t.Fatal(err)
	}
	if !orig.Equal(back) {
		t.Errorf("reconstruction differs:\n%s", xmlmodel.TreeString(back, syms))
	}
}

func TestReconstructMixedContentAndAttrs(t *testing.T) {
	docs := []string{
		`<p>hello <b>bold</b> world</p>`,
		`<r a="1" b="2"><x c="3">v</x><x>w</x></r>`,
		`<a><e/><e/>text<e/></a>`,
	}
	syms := xmlmodel.NewSymbols()
	for _, doc := range docs {
		orig, err := xmlmodel.ParseString(doc, syms)
		if err != nil {
			t.Fatal(err)
		}
		repo, err := FromTree(orig, syms)
		if err != nil {
			t.Fatal(err)
		}
		back, err := ReconstructTree(repo.Skel, repo.Classes, repo.Vectors)
		if err != nil {
			t.Fatalf("%s: %v", doc, err)
		}
		if !orig.Equal(back) {
			t.Errorf("%s: reconstruction differs: %s", doc, xmlmodel.TreeString(back, syms))
		}
	}
}

func TestRepositoryCreateOpenRoundTrip(t *testing.T) {
	dir := t.TempDir()
	repo, err := Create(strings.NewReader(bibXML), dir, Options{PoolPages: 64})
	if err != nil {
		t.Fatal(err)
	}
	var out1 strings.Builder
	if err := repo.WriteXML(&out1); err != nil {
		t.Fatal(err)
	}
	if err := repo.Close(); err != nil {
		t.Fatal(err)
	}

	repo2, err := Open(dir, Options{PoolPages: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer repo2.Close()
	var out2 strings.Builder
	if err := repo2.WriteXML(&out2); err != nil {
		t.Fatal(err)
	}
	if out1.String() != out2.String() {
		t.Error("reopened repository reconstructs differently")
	}
	// Reparse and compare to the original tree.
	syms := xmlmodel.NewSymbols()
	orig, _ := xmlmodel.ParseString(bibXML, syms)
	back, err := xmlmodel.ParseString(out2.String(), syms)
	if err != nil {
		t.Fatal(err)
	}
	if !orig.Equal(back) {
		t.Errorf("round trip differs:\n%s", out2.String())
	}
	if repo2.Skel.NumNodes() != 8 {
		t.Errorf("reopened skeleton nodes = %d, want 8", repo2.Skel.NumNodes())
	}
}

func TestCreateRefusesOverwrite(t *testing.T) {
	dir := t.TempDir()
	if _, err := Create(strings.NewReader(bibXML), dir, Options{}); err != nil {
		t.Fatal(err)
	}
	if _, err := Create(strings.NewReader(bibXML), dir, Options{}); err == nil {
		t.Error("second Create in same dir succeeded")
	}
}

func TestOpenMissingRepository(t *testing.T) {
	if _, err := Open(t.TempDir(), Options{}); err == nil {
		t.Error("Open of empty dir succeeded")
	}
}

func TestVectorizerRejectsUnbalanced(t *testing.T) {
	syms := xmlmodel.NewSymbols()
	vz := NewVectorizer(syms, MemSink{Set: vector.NewMemSet()})
	vz.Event(xmlmodel.Event{Kind: xmlmodel.StartElement, Tag: syms.Intern("a")})
	if _, err := vz.Skeleton(); err == nil {
		t.Error("Skeleton on unbalanced stream succeeded")
	}
}

func TestSkeletonFileOnDisk(t *testing.T) {
	dir := t.TempDir()
	repo, err := Create(strings.NewReader(bibXML), dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	repo.Close()
	if _, err := os.Stat(filepath.Join(dir, "skeleton.bin")); err != nil {
		t.Errorf("skeleton file missing: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "vectors.json")); err != nil {
		t.Errorf("vector catalog missing: %v", err)
	}
}

func genTree(r *rand.Rand, syms *xmlmodel.Symbols, depth int) *xmlmodel.Node {
	tags := []string{"a", "b", "c", "d"}
	n := xmlmodel.NewElem(syms.Intern(tags[r.Intn(len(tags))]))
	kids := r.Intn(4)
	lastText := false
	for i := 0; i < kids; i++ {
		if depth >= 4 || r.Intn(3) == 0 {
			if lastText {
				continue // avoid adjacent text nodes (not a parse normal form)
			}
			n.Append(xmlmodel.NewText(fmt.Sprintf("t%d", r.Intn(1000))))
			lastText = true
		} else {
			n.Append(genTree(r, syms, depth+1))
			lastText = false
		}
	}
	return n
}

// TestPropertyVectorizeReconstructIdentity is Prop. 2.1 + 2.2: for random
// trees, reconstruct(vectorize(T)) == T exactly.
func TestPropertyVectorizeReconstructIdentity(t *testing.T) {
	syms := xmlmodel.NewSymbols()
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		tree := genTree(r, syms, 0)
		repo, err := FromTree(tree, syms)
		if err != nil {
			t.Logf("seed %d: vectorize: %v", seed, err)
			return false
		}
		back, err := ReconstructTree(repo.Skel, repo.Classes, repo.Vectors)
		if err != nil {
			t.Logf("seed %d: reconstruct: %v", seed, err)
			return false
		}
		return tree.Equal(back)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestPropertyVectorTotals: the number of values across all vectors equals
// the number of text nodes in the tree.
func TestPropertyVectorTotals(t *testing.T) {
	syms := xmlmodel.NewSymbols()
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		tree := genTree(r, syms, 0)
		repo, err := FromTree(tree, syms)
		if err != nil {
			return false
		}
		var texts int64
		tree.Walk(func(n *xmlmodel.Node, _ int) bool {
			if n.IsText() {
				texts++
			}
			return true
		})
		total, err := vector.TotalValues(repo.Vectors)
		return err == nil && total == texts
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func makeWideDoc(rows int) string {
	var b strings.Builder
	b.WriteString("<t>")
	for i := 0; i < rows; i++ {
		b.WriteString("<r><a>1</a><b>2</b><c>3</c></r>")
	}
	b.WriteString("</t>")
	return b.String()
}

// TestDiskRepositoryRegularData: a regular table persists and reconstructs
// through the disk path, exercising multi-page vectors.
func TestDiskRepositoryRegularData(t *testing.T) {
	dir := t.TempDir()
	doc := makeWideDoc(5000)
	repo, err := Create(strings.NewReader(doc), dir, Options{PoolPages: 16})
	if err != nil {
		t.Fatal(err)
	}
	defer repo.Close()
	if repo.Skel.NumNodes() != 6 { // #, a, b, c, r, t
		t.Errorf("NumNodes = %d, want 6", repo.Skel.NumNodes())
	}
	v, err := repo.Vectors.Vector("/t/r/b")
	if err != nil {
		t.Fatal(err)
	}
	if v.Len() != 5000 {
		t.Errorf("vector len = %d, want 5000", v.Len())
	}
	var out strings.Builder
	if err := repo.WriteXML(&out); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(out.String(), "<t><r><a>1</a>") {
		t.Errorf("reconstruction prefix = %q", out.String()[:40])
	}
	if got := strings.Count(out.String(), "<r>"); got != 5000 {
		t.Errorf("rows reconstructed = %d", got)
	}
}

func BenchmarkVectorizeMem(b *testing.B) {
	doc := makeWideDoc(2000)
	syms := xmlmodel.NewSymbols()
	b.SetBytes(int64(len(doc)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := FromString(doc, syms); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReconstruct(b *testing.B) {
	doc := makeWideDoc(2000)
	syms := xmlmodel.NewSymbols()
	repo, err := FromString(doc, syms)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var out strings.Builder
		if err := ReconstructXML(repo.Skel, repo.Classes, repo.Vectors, syms, &out); err != nil {
			b.Fatal(err)
		}
	}
}
