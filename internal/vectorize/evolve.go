package vectorize

import (
	"context"
	"fmt"
	"sort"

	"vxml/internal/obs"
	"vxml/internal/skeleton"
	"vxml/internal/vector"
	"vxml/internal/xmlmodel"
)

// Schema evolution (§6 of the paper: "vectorization may simplify schema
// evolution, e.g., adding/removing a column"). Both operations build a
// new skeleton with hash-consing and leave untouched vectors shared with
// the input via an overlay set — no data vector is rewritten.

// DropPath removes every element reachable at the given class path (and
// its entire subtree) from the document: the column-drop of a vectorized
// store. The result shares all surviving vectors with the input.
func DropPath(repo *MemRepositoryView, path string) (*MemRepository, error) {
	drop := repo.Classes.Resolve(path)
	if drop == skeleton.NoClass {
		return nil, fmt.Errorf("vectorize: no path %q to drop", path)
	}
	if drop == repo.Classes.Root() {
		return nil, fmt.Errorf("vectorize: cannot drop the document root")
	}
	b := skeleton.NewBuilder()
	memo := map[[2]int32]*skeleton.Node{}
	var rec func(n *skeleton.Node, cls skeleton.ClassID) *skeleton.Node
	rec = func(n *skeleton.Node, cls skeleton.ClassID) *skeleton.Node {
		if n.IsText {
			return b.Text()
		}
		key := [2]int32{int32(n.ID), int32(cls)}
		if m, ok := memo[key]; ok {
			return m
		}
		var edges []skeleton.Edge
		for _, e := range n.Edges {
			step := e.Child.Tag
			if e.Child.IsText {
				step = skeleton.TextStep
			}
			kid := repo.Classes.Child(cls, step)
			if kid == drop {
				continue
			}
			edges = append(edges, skeleton.Edge{Child: rec(e.Child, kid), Count: e.Count})
		}
		m := b.Make(n.Tag, edges)
		memo[key] = m
		return m
	}
	root := rec(repo.Skel.Root, repo.Classes.Root())
	skel := b.Finish(root)

	// Hide the vectors under the dropped class.
	hidden := map[string]bool{}
	for _, t := range repo.Classes.Descendants(drop, skeleton.TextStep) {
		hidden[repo.Classes.VectorName(t)] = true
	}
	if t := repo.Classes.Child(drop, skeleton.TextStep); t != skeleton.NoClass {
		hidden[repo.Classes.VectorName(t)] = true
	}
	out := &overlaySet{base: repo.Vectors, hidden: hidden, added: map[string]*vector.Mem{}}
	return &MemRepository{
		Syms:    repo.Syms,
		Skel:    skel,
		Classes: skeleton.NewClasses(skel, repo.Syms),
		Vectors: out,
	}, nil
}

// AddColumn appends a new leaf element <tag>value</tag> as the last child
// of every instance of the parent class path — the column-add. One new
// vector is created; everything else is shared.
func AddColumn(repo *MemRepositoryView, parentPath, tag, value string) (*MemRepository, error) {
	parent := repo.Classes.Resolve(parentPath)
	if parent == skeleton.NoClass {
		return nil, fmt.Errorf("vectorize: no path %q to extend", parentPath)
	}
	if repo.Classes.IsText(parent) {
		return nil, fmt.Errorf("vectorize: cannot add a column under text")
	}
	sym := repo.Syms.Intern(tag)
	if repo.Classes.Child(parent, sym) != skeleton.NoClass {
		return nil, fmt.Errorf("vectorize: %s already has a %s child class", parentPath, tag)
	}
	b := skeleton.NewBuilder()
	leaf := b.Make(sym, []skeleton.Edge{{Child: b.Text(), Count: 1}})
	memo := map[[2]int32]*skeleton.Node{}
	var rec func(n *skeleton.Node, cls skeleton.ClassID) *skeleton.Node
	rec = func(n *skeleton.Node, cls skeleton.ClassID) *skeleton.Node {
		if n.IsText {
			return b.Text()
		}
		key := [2]int32{int32(n.ID), int32(cls)}
		if m, ok := memo[key]; ok {
			return m
		}
		edges := make([]skeleton.Edge, 0, len(n.Edges)+1)
		for _, e := range n.Edges {
			step := e.Child.Tag
			if e.Child.IsText {
				step = skeleton.TextStep
			}
			edges = append(edges, skeleton.Edge{Child: rec(e.Child, repo.Classes.Child(cls, step)), Count: e.Count})
		}
		if cls == parent {
			edges = append(edges, skeleton.Edge{Child: leaf, Count: 1})
		}
		m := b.Make(n.Tag, edges)
		memo[key] = m
		return m
	}
	root := rec(repo.Skel.Root, repo.Classes.Root())
	skel := b.Finish(root)

	newVec := &vector.Mem{}
	for i := int64(0); i < repo.Classes.Count(parent); i++ {
		newVec.Append(value)
	}
	name := parentPath + "/" + tag
	out := &overlaySet{
		base:   repo.Vectors,
		hidden: map[string]bool{},
		added:  map[string]*vector.Mem{name: newVec},
	}
	return &MemRepository{
		Syms:    repo.Syms,
		Skel:    skel,
		Classes: skeleton.NewClasses(skel, repo.Syms),
		Vectors: out,
	}, nil
}

// MemRepositoryView is the read view evolution operates on; both
// Repository and MemRepository satisfy it trivially.
type MemRepositoryView struct {
	Syms    *xmlmodel.Symbols
	Skel    *skeleton.Skeleton
	Classes *skeleton.Classes
	Vectors vector.Set
}

// View adapts a MemRepository.
func (m *MemRepository) View() *MemRepositoryView {
	return &MemRepositoryView{Syms: m.Syms, Skel: m.Skel, Classes: m.Classes, Vectors: m.Vectors}
}

// View adapts an on-disk Repository.
func (r *Repository) View() *MemRepositoryView {
	return &MemRepositoryView{Syms: r.Syms, Skel: r.Skel, Classes: r.Classes, Vectors: r.Vectors}
}

// overlaySet presents base minus hidden plus added, sharing base storage.
type overlaySet struct {
	base   vector.Set
	hidden map[string]bool
	added  map[string]*vector.Mem
}

func (o *overlaySet) Names() []string {
	base := o.base.Names()
	out := make([]string, 0, len(base)+len(o.added))
	for _, n := range base {
		if !o.hidden[n] {
			out = append(out, n)
		}
	}
	for n := range o.added {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

func (o *overlaySet) Vector(name string) (vector.Vector, error) {
	return o.VectorCtx(context.Background(), nil, name)
}

// VectorCtx implements vector.CtxSet by forwarding the request attribution
// to the base set; overlay-added vectors are in memory and cost no I/O.
func (o *overlaySet) VectorCtx(ctx context.Context, m *obs.TaskMeter, name string) (vector.Vector, error) {
	if v, ok := o.added[name]; ok {
		return v, nil
	}
	if o.hidden[name] {
		return nil, fmt.Errorf("vectorize: vector %q was dropped", name)
	}
	return vector.OpenFrom(ctx, m, o.base, name)
}
