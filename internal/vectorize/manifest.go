package vectorize

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"vxml/internal/storage"
	"vxml/internal/vector"
)

// The MANIFEST is the repository's self-description: format version and,
// for every file belonging to the repository, its committed size plus
// either a whole-file CRC32C (skeleton and catalog, which are rewritten
// atomically) or a committed page count (vector files, which grow in
// place and carry per-page CRCs instead).
//
// The manifest is written last on every commit, so it is allowed to lag
// the files it describes by exactly one interrupted append: a described
// file that differs from its manifest entry but carries a valid in-band
// checksum footer is a newer committed version (the crash hit between the
// file's commit and the manifest's), and Open adopts it and repairs the
// manifest. A described file whose own checksum fails is bit rot and is
// reported as ErrCorrupt with the file and offset.

// ManifestName is the manifest's file name within a repository directory.
const ManifestName = "MANIFEST"

// manifestFormat is the repository format version. Version 2 introduced
// page CRC trailers (vector magics VXV2/VXC2), checksum footers on the
// skeleton and catalog, and the manifest itself; version 1 repositories
// (no manifest) are not readable and must be rebuilt from source XML.
const manifestFormat = 2

// FormatVersion reports the repository format version this build reads
// and writes, for build-info surfaces such as vx_build_info on /metrics.
func FormatVersion() int { return manifestFormat }

// Manifest describes a committed repository.
type Manifest struct {
	Format int                     `json:"format"`
	Files  map[string]ManifestFile `json:"files"`
}

// ManifestFile describes one committed file.
type ManifestFile struct {
	// Size is the file's byte size at commit. Paged files may legitimately
	// be larger (an orphaned append tail); anything smaller is truncation.
	Size int64 `json:"size"`
	// CRC32C is the hex CRC32C of the whole on-disk file, for files
	// rewritten atomically on every commit. Empty for paged vector files.
	CRC32C string `json:"crc32c,omitempty"`
	// Pages is the committed page count of a paged vector file.
	Pages int64 `json:"pages,omitempty"`
}

// paged reports whether the entry describes a paged vector file.
func (f ManifestFile) paged() bool { return f.CRC32C == "" }

// writeManifest builds and atomically writes dir's manifest. vecPages maps
// each cataloged vector file name to its current page count; the skeleton
// and catalog are read back from disk so the manifest records exactly the
// committed bytes.
func writeManifest(fsys storage.FS, dir string, vecPages map[string]int64) error {
	m := Manifest{Format: manifestFormat, Files: make(map[string]ManifestFile)}
	for _, name := range []string{skeletonFile, vector.CatalogName} {
		data, err := fsys.ReadFile(filepath.Join(dir, name))
		if err != nil {
			return fmt.Errorf("vectorize: manifest: %w", err)
		}
		m.Files[name] = ManifestFile{
			Size:   int64(len(data)),
			CRC32C: fmt.Sprintf("%08x", storage.Checksum(data)),
		}
	}
	for file, pages := range vecPages {
		m.Files[file] = ManifestFile{Size: pages * storage.PageSize, Pages: pages}
	}
	data, err := json.MarshalIndent(&m, "", " ")
	if err != nil {
		return err
	}
	if err := storage.WriteFileAtomic(fsys, filepath.Join(dir, ManifestName), data); err != nil {
		return fmt.Errorf("vectorize: write manifest: %w", err)
	}
	return nil
}

// readManifest reads and validates dir's manifest.
func readManifest(fsys storage.FS, dir string) (*Manifest, error) {
	body, err := storage.ReadFileChecksummed(fsys, filepath.Join(dir, ManifestName))
	if os.IsNotExist(err) {
		return nil, fmt.Errorf("vectorize: %s has no %s: not a repository, an incomplete build, or a format-1 repository (rebuild from the source XML)", dir, ManifestName)
	}
	if err != nil {
		return nil, err
	}
	var m Manifest
	if err := json.Unmarshal(body, &m); err != nil {
		return nil, fmt.Errorf("vectorize: parse %s: %v: %w", ManifestName, err, storage.ErrCorrupt)
	}
	if m.Format != manifestFormat {
		return nil, fmt.Errorf("vectorize: %s: unsupported repository format %d (this build reads format %d)", dir, m.Format, manifestFormat)
	}
	return &m, nil
}

// verifyManifest checks every file the manifest describes. It returns
// stale=true when some atomically-rewritten file is a newer committed
// version than the manifest records (interrupted append: adopt the file,
// repair the manifest); corruption returns an error wrapping ErrCorrupt
// naming the file.
func verifyManifest(fsys storage.FS, dir string, m *Manifest) (stale bool, err error) {
	for name, mf := range m.Files {
		path := filepath.Join(dir, name)
		if mf.paged() {
			st, err := fsys.Stat(path)
			if err != nil {
				return false, fmt.Errorf("vectorize: %s listed in manifest: %w", name, err)
			}
			if st.Size()%storage.PageSize != 0 {
				return false, fmt.Errorf("vectorize: %s: size %d not page aligned: %w", name, st.Size(), storage.ErrCorrupt)
			}
			if pages := st.Size() / storage.PageSize; pages < mf.Pages {
				return false, fmt.Errorf("vectorize: %s: truncated to %d pages, manifest committed %d: %w", name, pages, mf.Pages, storage.ErrCorrupt)
			}
			continue
		}
		data, err := fsys.ReadFile(path)
		if err != nil {
			return false, fmt.Errorf("vectorize: %s listed in manifest: %w", name, err)
		}
		if fmt.Sprintf("%08x", storage.Checksum(data)) == mf.CRC32C {
			if int64(len(data)) != mf.Size {
				return false, fmt.Errorf("vectorize: %s: size %d differs from manifest %d: %w", name, len(data), mf.Size, storage.ErrCorrupt)
			}
			continue
		}
		// Mismatch against the manifest. If the file's own footer verifies,
		// it is a newer committed version (crash before the manifest write);
		// otherwise the file itself is damaged.
		if _, err := storage.ReadFileChecksummed(fsys, path); err != nil {
			return false, err
		}
		stale = true
	}
	return stale, nil
}
