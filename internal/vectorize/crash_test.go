package vectorize

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"vxml/internal/storage"
)

// Crash-safety: every prefix of the write sequence of Create and Append
// must leave a repository that either opens fully consistent or fails
// with a clean, typed error — never a panic, never silent partial data.
//
// The harness: FaultFS cuts the write stream after N operations (the
// moment the machine "died"), MemFS.Crash then discards everything not
// yet fsynced (what a real power cut does to the page cache), and the
// test reopens and checks. N sweeps the entire write sequence.

const crashDoc = `<bib><book><title>A</title><author>X</author></book>` +
	`<book><title>B</title><author>Y</author></book></bib>`
const crashFrag = `<bib><book><title>C</title><author>Z</author></book></bib>`

const crashPool = 8

// xmlOf reconstructs the repository at dir as a string.
func xmlOf(t *testing.T, dir string, fsys storage.FS) string {
	t.Helper()
	repo, err := Open(dir, Options{PoolPages: crashPool, FS: fsys})
	if err != nil {
		t.Fatal(err)
	}
	defer repo.Close()
	var buf bytes.Buffer
	if err := repo.WriteXML(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

func TestCreateCrashAtEveryWrite(t *testing.T) {
	// Reference: the document a fault-free Create stores.
	refFS := storage.NewMemFS()
	refRepo, err := Create(strings.NewReader(crashDoc), "repo", Options{PoolPages: crashPool, FS: refFS})
	if err != nil {
		t.Fatal(err)
	}
	refRepo.Close()
	want := xmlOf(t, "repo", refFS)

	// Count the full write sequence.
	countFS := storage.NewFaultFS(storage.NewMemFS())
	r, err := Create(strings.NewReader(crashDoc), "repo", Options{PoolPages: crashPool, FS: countFS})
	if err != nil {
		t.Fatal(err)
	}
	r.Close()
	total := countFS.Writes()
	if total < 5 {
		t.Fatalf("implausible write count %d", total)
	}

	for n := int64(0); n <= total; n++ {
		mem := storage.NewMemFS()
		ff := storage.NewFaultFS(mem)
		ff.CrashAfterWrites(n)
		repo, err := Create(strings.NewReader(crashDoc), "repo", Options{PoolPages: crashPool, FS: ff})
		if err == nil {
			repo.Close()
		}
		// Machine reset: unsynced state evaporates, the budget is lifted.
		mem.Crash()
		ff.CrashAfterWrites(-1)

		reopened, openErr := Open("repo", Options{PoolPages: crashPool, FS: ff})
		switch {
		case openErr == nil:
			// The build committed: it must be the complete repository.
			var buf bytes.Buffer
			if err := reopened.WriteXML(&buf); err != nil {
				t.Fatalf("crash@%d: reopened repo does not reconstruct: %v", n, err)
			}
			reopened.Close()
			if buf.String() != want {
				t.Fatalf("crash@%d: reconstructed XML differs from the committed document", n)
			}
			if _, err := Fsck("repo", Options{PoolPages: crashPool, FS: ff}); err != nil {
				t.Fatalf("crash@%d: fsck after committed create: %v", n, err)
			}
		case errors.Is(openErr, storage.ErrInjected):
			t.Fatalf("crash@%d: injected fault leaked through recovery: %v", n, openErr)
		default:
			// The build never committed: Open explains, and a retried Create
			// (which clears the stale .building directory) must succeed.
			repo2, err := Create(strings.NewReader(crashDoc), "repo", Options{PoolPages: crashPool, FS: ff})
			if err != nil {
				t.Fatalf("crash@%d: Create after crash: %v (open error was: %v)", n, err, openErr)
			}
			repo2.Close()
			if got := xmlOf(t, "repo", ff); got != want {
				t.Fatalf("crash@%d: re-created repo differs", n)
			}
		}
	}
}

func TestAppendCrashAtEveryWrite(t *testing.T) {
	// References: document before and after a fault-free append.
	build := func() (*storage.FaultFS, *storage.MemFS) {
		mem := storage.NewMemFS()
		ff := storage.NewFaultFS(mem)
		repo, err := Create(strings.NewReader(crashDoc), "repo", Options{PoolPages: crashPool, FS: ff})
		if err != nil {
			t.Fatal(err)
		}
		repo.Close()
		return ff, mem
	}
	refFS, _ := build()
	wantOld := xmlOf(t, "repo", refFS)
	refRepo, err := Open("repo", Options{PoolPages: crashPool, FS: refFS})
	if err != nil {
		t.Fatal(err)
	}
	if err := refRepo.Append(strings.NewReader(crashFrag)); err != nil {
		t.Fatal(err)
	}
	refRepo.Close()
	wantNew := xmlOf(t, "repo", refFS)
	if wantNew == wantOld {
		t.Fatal("append reference did not change the document")
	}

	// Count the append's write sequence.
	countFS, _ := build()
	cr, err := Open("repo", Options{PoolPages: crashPool, FS: countFS})
	if err != nil {
		t.Fatal(err)
	}
	countFS.CrashAfterWrites(-1) // reset counter
	if err := cr.Append(strings.NewReader(crashFrag)); err != nil {
		t.Fatal(err)
	}
	cr.Close()
	total := countFS.Writes()
	if total < 5 {
		t.Fatalf("implausible append write count %d", total)
	}

	for n := int64(0); n <= total; n++ {
		ff, mem := build()
		repo, err := Open("repo", Options{PoolPages: crashPool, FS: ff})
		if err != nil {
			t.Fatal(err)
		}
		ff.CrashAfterWrites(n)
		appendErr := repo.Append(strings.NewReader(crashFrag))
		// Machine reset mid- or post-append. The pre-crash Repository (and
		// its page pool) is abandoned, like the process it lived in.
		mem.Crash()
		ff.CrashAfterWrites(-1)

		reopened, openErr := Open("repo", Options{PoolPages: crashPool, FS: ff})
		if openErr != nil {
			t.Fatalf("crash@%d (append err: %v): repository lost: %v", n, appendErr, openErr)
		}
		var buf bytes.Buffer
		if err := reopened.WriteXML(&buf); err != nil {
			t.Fatalf("crash@%d: reconstruct after crash: %v", n, err)
		}
		reopened.Close()
		got := buf.String()
		if got != wantOld && got != wantNew {
			t.Fatalf("crash@%d: document is neither pre- nor post-append state", n)
		}
		if appendErr == nil && got != wantNew {
			t.Fatalf("crash@%d: append reported success but document rolled back", n)
		}
		if _, err := Fsck("repo", Options{PoolPages: crashPool, FS: ff}); err != nil {
			t.Fatalf("crash@%d: fsck after crash recovery: %v", n, err)
		}
	}
}
