package vectorize

import (
	"strings"
	"testing"

	"vxml/internal/vector"
	"vxml/internal/xmlmodel"
)

const evolveDoc = `<table>
<row><a>1</a><b>x</b><c>p</c></row>
<row><a>2</a><b>y</b><c>q</c></row>
<row><a>3</a><b>z</b><c>r</c></row>
</table>`

func evolveRepo(t *testing.T) (*MemRepository, *xmlmodel.Symbols) {
	t.Helper()
	syms := xmlmodel.NewSymbols()
	repo, err := FromString(evolveDoc, syms)
	if err != nil {
		t.Fatal(err)
	}
	return repo, syms
}

func reconstructed(t *testing.T, r *MemRepository) string {
	t.Helper()
	var b strings.Builder
	if err := ReconstructXML(r.Skel, r.Classes, r.Vectors, r.Syms, &b); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

func TestDropPath(t *testing.T) {
	repo, _ := evolveRepo(t)
	out, err := DropPath(repo.View(), "/table/row/b")
	if err != nil {
		t.Fatal(err)
	}
	got := reconstructed(t, out)
	want := "<table><row><a>1</a><c>p</c></row><row><a>2</a><c>q</c></row><row><a>3</a><c>r</c></row></table>"
	if got != want {
		t.Errorf("dropped doc = %s", got)
	}
	// The b vector is gone; a and c are shared with the original.
	names := out.Vectors.Names()
	if len(names) != 2 {
		t.Errorf("vectors = %v", names)
	}
	if _, err := out.Vectors.Vector("/table/row/b"); err == nil {
		t.Error("dropped vector still accessible")
	}
	origA, _ := repo.Vectors.Vector("/table/row/a")
	newA, _ := out.Vectors.Vector("/table/row/a")
	if origA != newA {
		t.Error("surviving vector not shared with the original")
	}
}

func TestDropSubtree(t *testing.T) {
	syms := xmlmodel.NewSymbols()
	repo, err := FromString(`<d><k><x>1</x><y>2</y></k><t>T</t><k><x>3</x></k></d>`, syms)
	if err != nil {
		t.Fatal(err)
	}
	out, err := DropPath(repo.View(), "/d/k")
	if err != nil {
		t.Fatal(err)
	}
	if got := reconstructed(t, out); got != "<d><t>T</t></d>" {
		t.Errorf("doc = %s", got)
	}
	if n := len(out.Vectors.Names()); n != 1 {
		t.Errorf("vectors = %v", out.Vectors.Names())
	}
}

func TestDropPathErrors(t *testing.T) {
	repo, _ := evolveRepo(t)
	if _, err := DropPath(repo.View(), "/table/row/zzz"); err == nil {
		t.Error("dropping a missing path succeeded")
	}
	if _, err := DropPath(repo.View(), "/table"); err == nil {
		t.Error("dropping the root succeeded")
	}
}

func TestAddColumn(t *testing.T) {
	repo, _ := evolveRepo(t)
	out, err := AddColumn(repo.View(), "/table/row", "d", "0")
	if err != nil {
		t.Fatal(err)
	}
	got := reconstructed(t, out)
	want := "<table><row><a>1</a><b>x</b><c>p</c><d>0</d></row>" +
		"<row><a>2</a><b>y</b><c>q</c><d>0</d></row>" +
		"<row><a>3</a><b>z</b><c>r</c><d>0</d></row></table>"
	if got != want {
		t.Errorf("extended doc = %s", got)
	}
	v, err := out.Vectors.Vector("/table/row/d")
	if err != nil {
		t.Fatal(err)
	}
	if v.Len() != 3 {
		t.Errorf("new vector len = %d", v.Len())
	}
	vals, _ := vector.All(v)
	if strings.Join(vals, ",") != "0,0,0" {
		t.Errorf("new vector = %v", vals)
	}
	// Skeleton stays compact: the three rows still share one node.
	if out.Skel.NumNodes() != repo.Skel.NumNodes()+1 {
		t.Errorf("skeleton nodes = %d, want %d", out.Skel.NumNodes(), repo.Skel.NumNodes()+1)
	}
}

func TestAddColumnErrors(t *testing.T) {
	repo, _ := evolveRepo(t)
	if _, err := AddColumn(repo.View(), "/table/zzz", "d", "0"); err == nil {
		t.Error("extending a missing path succeeded")
	}
	if _, err := AddColumn(repo.View(), "/table/row", "a", "0"); err == nil {
		t.Error("duplicate column add succeeded")
	}
}

// TestEvolveComposition: drop then add then drop again round-trips sanely.
func TestEvolveComposition(t *testing.T) {
	repo, _ := evolveRepo(t)
	v1, err := DropPath(repo.View(), "/table/row/c")
	if err != nil {
		t.Fatal(err)
	}
	v2, err := AddColumn(v1.View(), "/table/row", "n", "new")
	if err != nil {
		t.Fatal(err)
	}
	v3, err := DropPath(v2.View(), "/table/row/a")
	if err != nil {
		t.Fatal(err)
	}
	got := reconstructed(t, v3)
	want := "<table><row><b>x</b><n>new</n></row><row><b>y</b><n>new</n></row><row><b>z</b><n>new</n></row></table>"
	if got != want {
		t.Errorf("composed doc = %s", got)
	}
}

// TestDropSharedShape: dropping a path must not disturb subtrees that
// share DAG nodes but live at other paths.
func TestDropSharedShape(t *testing.T) {
	// The <p><q>v</q></p> shape appears under both /d/a and /d/b; dropping
	// /d/a/p must keep /d/b/p intact despite node sharing.
	syms := xmlmodel.NewSymbols()
	repo, err := FromString(`<d><a><p><q>v</q></p></a><b><p><q>v</q></p></b></d>`, syms)
	if err != nil {
		t.Fatal(err)
	}
	out, err := DropPath(repo.View(), "/d/a/p")
	if err != nil {
		t.Fatal(err)
	}
	if got := reconstructed(t, out); got != "<d><a/><b><p><q>v</q></p></b></d>" {
		t.Errorf("doc = %s", got)
	}
}
