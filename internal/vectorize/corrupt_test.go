package vectorize

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// Failure injection: a damaged repository must fail loudly with a useful
// error, never panic or return wrong data silently.

func corruptRepo(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	repo, err := Create(strings.NewReader(
		`<bib><book><title>A</title></book><book><title>B</title></book></bib>`),
		dir, Options{PoolPages: 64})
	if err != nil {
		t.Fatal(err)
	}
	if err := repo.Close(); err != nil {
		t.Fatal(err)
	}
	return dir
}

func TestOpenCorruptSkeleton(t *testing.T) {
	dir := corruptRepo(t)
	path := filepath.Join(dir, "skeleton.bin")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Truncate mid-file.
	if err := os.WriteFile(path, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{PoolPages: 64}); err == nil {
		t.Error("Open with truncated skeleton succeeded")
	}
	// Garbage magic.
	if err := os.WriteFile(path, []byte("GARBAGE!"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{PoolPages: 64}); err == nil {
		t.Error("Open with garbage skeleton succeeded")
	}
}

func TestOpenMissingCatalog(t *testing.T) {
	dir := corruptRepo(t)
	if err := os.Remove(filepath.Join(dir, "vectors.json")); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{PoolPages: 64}); err == nil {
		t.Error("Open without catalog succeeded")
	}
}

func TestOpenCorruptCatalog(t *testing.T) {
	dir := corruptRepo(t)
	if err := os.WriteFile(filepath.Join(dir, "vectors.json"), []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{PoolPages: 64}); err == nil {
		t.Error("Open with corrupt catalog succeeded")
	}
}

func TestVectorFileMissing(t *testing.T) {
	dir := corruptRepo(t)
	repo, err := Open(dir, Options{PoolPages: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer repo.Close()
	// Remove a vector file out from under the catalog: opening the vector
	// must fail (bad magic on the zero pages a lazy create would yield, or
	// a read error).
	matches, _ := filepath.Glob(filepath.Join(dir, "v*.vec"))
	if len(matches) == 0 {
		t.Fatal("no vector files found")
	}
	if err := os.Remove(matches[0]); err != nil {
		t.Fatal(err)
	}
	var sawErr bool
	for _, name := range repo.Vectors.Names() {
		if _, err := repo.Vectors.Vector(name); err != nil {
			sawErr = true
		}
	}
	if !sawErr {
		t.Error("no error opening vectors after deleting a file")
	}
}

func TestVectorRecordLengthCorrupt(t *testing.T) {
	dir := t.TempDir()
	var doc strings.Builder
	doc.WriteString("<d>")
	for i := 0; i < 2000; i++ {
		doc.WriteString("<v>some value text here</v>")
	}
	doc.WriteString("</d>")
	repo, err := Create(strings.NewReader(doc.String()), dir, Options{PoolPages: 64})
	if err != nil {
		t.Fatal(err)
	}
	repo.Close()
	matches, _ := filepath.Glob(filepath.Join(dir, "v*.vec"))
	if len(matches) == 0 {
		t.Fatal("no vector files found")
	}
	// Smash the length prefix of the first record on the first data page:
	// a huge uvarint that points far past the page's used payload. Scan
	// must report a corrupt record, not slice out of bounds and panic.
	f, err := os.OpenFile(matches[0], os.O_RDWR, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	// Page 1 starts at 8192; its 12-byte header is followed by records.
	if _, err := f.WriteAt([]byte{0xff, 0xff, 0xff, 0xff, 0x7f}, 8192+12); err != nil {
		t.Fatal(err)
	}
	f.Close()
	repo2, err := Open(dir, Options{PoolPages: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer repo2.Close()
	v, err := repo2.Vectors.Vector("/d/v")
	if err != nil {
		t.Fatal(err)
	}
	err = v.Scan(0, v.Len(), func(int64, []byte) error { return nil })
	if err == nil {
		t.Error("scan over corrupt record length succeeded")
	} else if !strings.Contains(err.Error(), "corrupt") {
		t.Errorf("scan error %q does not mention corruption", err)
	}
}

func TestVectorFileTruncated(t *testing.T) {
	dir := t.TempDir()
	var doc strings.Builder
	doc.WriteString("<d>")
	for i := 0; i < 5000; i++ {
		doc.WriteString("<v>some value text here</v>")
	}
	doc.WriteString("</d>")
	repo, err := Create(strings.NewReader(doc.String()), dir, Options{PoolPages: 64})
	if err != nil {
		t.Fatal(err)
	}
	repo.Close()
	matches, _ := filepath.Glob(filepath.Join(dir, "v*.vec"))
	st, err := os.Stat(matches[0])
	if err != nil {
		t.Fatal(err)
	}
	// Cut the file to a page boundary shorter than the data.
	if err := os.Truncate(matches[0], st.Size()/2/8192*8192); err != nil {
		t.Fatal(err)
	}
	repo2, err := Open(dir, Options{PoolPages: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer repo2.Close()
	v, err := repo2.Vectors.Vector("/d/v")
	if err != nil {
		t.Fatal(err) // meta page intact; the damage is further in
	}
	if err := v.Scan(0, v.Len(), func(int64, []byte) error { return nil }); err == nil {
		t.Error("full scan of truncated vector succeeded")
	}
}
