package vectorize

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"vxml/internal/storage"
)

// Failure injection: a damaged repository must fail loudly with a useful
// error, never panic or return wrong data silently.

func corruptRepo(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	repo, err := Create(strings.NewReader(
		`<bib><book><title>A</title></book><book><title>B</title></book></bib>`),
		dir, Options{PoolPages: 64})
	if err != nil {
		t.Fatal(err)
	}
	if err := repo.Close(); err != nil {
		t.Fatal(err)
	}
	return dir
}

func TestOpenCorruptSkeleton(t *testing.T) {
	dir := corruptRepo(t)
	path := filepath.Join(dir, "skeleton.bin")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Truncate mid-file.
	if err := os.WriteFile(path, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{PoolPages: 64}); err == nil {
		t.Error("Open with truncated skeleton succeeded")
	}
	// Garbage magic.
	if err := os.WriteFile(path, []byte("GARBAGE!"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{PoolPages: 64}); err == nil {
		t.Error("Open with garbage skeleton succeeded")
	}
}

func TestOpenMissingCatalog(t *testing.T) {
	dir := corruptRepo(t)
	if err := os.Remove(filepath.Join(dir, "vectors.json")); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{PoolPages: 64}); err == nil {
		t.Error("Open without catalog succeeded")
	}
}

func TestOpenCorruptCatalog(t *testing.T) {
	dir := corruptRepo(t)
	if err := os.WriteFile(filepath.Join(dir, "vectors.json"), []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{PoolPages: 64}); err == nil {
		t.Error("Open with corrupt catalog succeeded")
	}
}

func TestVectorFileMissing(t *testing.T) {
	dir := corruptRepo(t)
	repo, err := Open(dir, Options{PoolPages: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer repo.Close()
	// Remove a vector file out from under the catalog: opening the vector
	// must fail (bad magic on the zero pages a lazy create would yield, or
	// a read error).
	matches, _ := filepath.Glob(filepath.Join(dir, "v*.vec"))
	if len(matches) == 0 {
		t.Fatal("no vector files found")
	}
	if err := os.Remove(matches[0]); err != nil {
		t.Fatal(err)
	}
	var sawErr bool
	for _, name := range repo.Vectors.Names() {
		if _, err := repo.Vectors.Vector(name); err != nil {
			sawErr = true
		}
	}
	if !sawErr {
		t.Error("no error opening vectors after deleting a file")
	}
}

func TestVectorRecordLengthCorrupt(t *testing.T) {
	dir := t.TempDir()
	var doc strings.Builder
	doc.WriteString("<d>")
	for i := 0; i < 2000; i++ {
		doc.WriteString("<v>some value text here</v>")
	}
	doc.WriteString("</d>")
	repo, err := Create(strings.NewReader(doc.String()), dir, Options{PoolPages: 64})
	if err != nil {
		t.Fatal(err)
	}
	repo.Close()
	matches, _ := filepath.Glob(filepath.Join(dir, "v*.vec"))
	if len(matches) == 0 {
		t.Fatal("no vector files found")
	}
	// Smash the length prefix of the first record on the first data page:
	// a huge uvarint that points far past the page's used payload. Scan
	// must report a corrupt record, not slice out of bounds and panic.
	f, err := os.OpenFile(matches[0], os.O_RDWR, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	// Page 1 starts at 8192; its 12-byte header is followed by records.
	if _, err := f.WriteAt([]byte{0xff, 0xff, 0xff, 0xff, 0x7f}, 8192+12); err != nil {
		t.Fatal(err)
	}
	f.Close()
	repo2, err := Open(dir, Options{PoolPages: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer repo2.Close()
	v, err := repo2.Vectors.Vector("/d/v")
	if err != nil {
		t.Fatal(err)
	}
	err = v.Scan(0, v.Len(), func(int64, []byte) error { return nil })
	if err == nil {
		t.Error("scan over corrupt record length succeeded")
	} else if !strings.Contains(err.Error(), "corrupt") {
		t.Errorf("scan error %q does not mention corruption", err)
	}
}

func TestVectorFileTruncated(t *testing.T) {
	dir := t.TempDir()
	var doc strings.Builder
	doc.WriteString("<d>")
	for i := 0; i < 5000; i++ {
		doc.WriteString("<v>some value text here</v>")
	}
	doc.WriteString("</d>")
	repo, err := Create(strings.NewReader(doc.String()), dir, Options{PoolPages: 64})
	if err != nil {
		t.Fatal(err)
	}
	repo.Close()
	matches, _ := filepath.Glob(filepath.Join(dir, "v*.vec"))
	st, err := os.Stat(matches[0])
	if err != nil {
		t.Fatal(err)
	}
	// Cut the file to a page boundary shorter than the data. The manifest
	// records the committed page count, so Open itself must refuse, with a
	// typed error naming the file.
	if err := os.Truncate(matches[0], st.Size()/2/8192*8192); err != nil {
		t.Fatal(err)
	}
	_, err = Open(dir, Options{PoolPages: 64})
	if err == nil {
		t.Fatal("Open of repository with truncated vector file succeeded")
	}
	if !errors.Is(err, storage.ErrCorrupt) {
		t.Errorf("error %q does not wrap storage.ErrCorrupt", err)
	}
	if !strings.Contains(err.Error(), filepath.Base(matches[0])) {
		t.Errorf("error %q does not name the damaged file", err)
	}
}

// TestVectorBitFlip flips one byte in the middle of a vector page: the
// page CRC must catch it during a scan, with a typed error naming the
// file, and the process must not panic.
func TestVectorBitFlip(t *testing.T) {
	dir := t.TempDir()
	var doc strings.Builder
	doc.WriteString("<d>")
	for i := 0; i < 2000; i++ {
		doc.WriteString("<v>some value text here</v>")
	}
	doc.WriteString("</d>")
	repo, err := Create(strings.NewReader(doc.String()), dir, Options{PoolPages: 64})
	if err != nil {
		t.Fatal(err)
	}
	repo.Close()
	matches, _ := filepath.Glob(filepath.Join(dir, "v*.vec"))
	if len(matches) == 0 {
		t.Fatal("no vector files found")
	}
	f, err := os.OpenFile(matches[0], os.O_RDWR, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	// One flipped byte in the middle of data page 2. Size and structure
	// stay plausible; only the CRC can notice.
	off := int64(2*8192 + 4000)
	var b [1]byte
	if _, err := f.ReadAt(b[:], off); err != nil {
		t.Fatal(err)
	}
	b[0] ^= 0x40
	if _, err := f.WriteAt(b[:], off); err != nil {
		t.Fatal(err)
	}
	f.Close()
	repo2, err := Open(dir, Options{PoolPages: 64})
	if err != nil {
		t.Fatal(err) // damage is past the meta page; Open is lazy
	}
	defer repo2.Close()
	v, err := repo2.Vectors.Vector("/d/v")
	if err != nil {
		t.Fatal(err)
	}
	err = v.Scan(0, v.Len(), func(int64, []byte) error { return nil })
	if err == nil {
		t.Fatal("scan over bit-flipped page succeeded")
	}
	if !errors.Is(err, storage.ErrCorrupt) {
		t.Errorf("error %q does not wrap storage.ErrCorrupt", err)
	}
	if !strings.Contains(err.Error(), filepath.Base(matches[0])) {
		t.Errorf("error %q does not name the damaged file", err)
	}
	// Fsck must find the same damage even without a scanning query.
	if _, err := Fsck(dir, Options{PoolPages: 64}); err == nil {
		t.Error("Fsck of bit-flipped repository succeeded")
	} else if !errors.Is(err, storage.ErrCorrupt) {
		t.Errorf("Fsck error %q does not wrap storage.ErrCorrupt", err)
	}
}

// TestSkeletonBitFlip flips one byte inside the skeleton file: the file
// footer must catch it at Open, wrapping ErrCorrupt and naming the file.
func TestSkeletonBitFlip(t *testing.T) {
	dir := corruptRepo(t)
	path := filepath.Join(dir, "skeleton.bin")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x01
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = Open(dir, Options{PoolPages: 64})
	if err == nil {
		t.Fatal("Open with bit-flipped skeleton succeeded")
	}
	if !errors.Is(err, storage.ErrCorrupt) {
		t.Errorf("error %q does not wrap storage.ErrCorrupt", err)
	}
	if !strings.Contains(err.Error(), "skeleton.bin") {
		t.Errorf("error %q does not name skeleton.bin", err)
	}
}

// TestSkeletonTruncated cuts the skeleton file: ErrCorrupt, file named,
// no panic.
func TestSkeletonTruncated(t *testing.T) {
	dir := corruptRepo(t)
	path := filepath.Join(dir, "skeleton.bin")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, keep := range []int{len(data) / 2, 7, 0} {
		if err := os.WriteFile(path, data[:keep], 0o644); err != nil {
			t.Fatal(err)
		}
		_, err := Open(dir, Options{PoolPages: 64})
		if err == nil {
			t.Fatalf("Open with skeleton truncated to %d bytes succeeded", keep)
		}
		if !errors.Is(err, storage.ErrCorrupt) {
			t.Errorf("truncation to %d: error %q does not wrap storage.ErrCorrupt", keep, err)
		}
		if !strings.Contains(err.Error(), "skeleton.bin") {
			t.Errorf("truncation to %d: error %q does not name skeleton.bin", keep, err)
		}
	}
}

// TestManifestCorrupt damages the manifest itself: Open must fail with a
// typed error, not guess.
func TestManifestCorrupt(t *testing.T) {
	dir := corruptRepo(t)
	path := filepath.Join(dir, ManifestName)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/3] ^= 0x80
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = Open(dir, Options{PoolPages: 64})
	if err == nil {
		t.Fatal("Open with corrupt manifest succeeded")
	}
	if !errors.Is(err, storage.ErrCorrupt) {
		t.Errorf("error %q does not wrap storage.ErrCorrupt", err)
	}
}

// TestOpenMissingManifest removes the manifest: Open must explain what is
// wrong rather than proceeding without integrity metadata.
func TestOpenMissingManifest(t *testing.T) {
	dir := corruptRepo(t)
	if err := os.Remove(filepath.Join(dir, ManifestName)); err != nil {
		t.Fatal(err)
	}
	_, err := Open(dir, Options{PoolPages: 64})
	if err == nil {
		t.Fatal("Open without manifest succeeded")
	}
	if !strings.Contains(err.Error(), ManifestName) {
		t.Errorf("error %q does not mention the manifest", err)
	}
}

// TestFsckClean verifies Fsck accepts a freshly built repository and
// reports the scan totals.
func TestFsckClean(t *testing.T) {
	dir := corruptRepo(t)
	rep, err := Fsck(dir, Options{PoolPages: 64})
	if err != nil {
		t.Fatalf("Fsck of clean repository: %v", err)
	}
	if len(rep.Warnings) != 0 {
		t.Errorf("Fsck warnings on clean repository: %v", rep.Warnings)
	}
	if rep.Vectors != 1 || rep.Values != 2 {
		t.Errorf("Fsck scanned %d vectors / %d values, want 1 / 2", rep.Vectors, rep.Values)
	}
}
