package vectorize

import (
	"bytes"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync/atomic"

	"vxml/internal/skeleton"
	"vxml/internal/storage"
	"vxml/internal/vector"
	"vxml/internal/xmlmodel"
)

// Repository is an opened vectorized XML store: the skeleton (in memory —
// the paper's central assumption is that compressed skeletons fit in main
// memory), the class registry, and the lazily-loaded data vectors.
//
// Concurrency: an opened Repository is safe to share across goroutines
// for querying — the skeleton is immutable, the class registry locks its
// lazy memos, the vector set locks its lazy opens, and the buffer pool
// underneath is concurrency-safe. Serve each query through its own engine
// (core.NewRepoEngine) or share one engine; both are safe — a per-query
// engine additionally isolates index builds and statistics. Mutating
// operations (Create, Append, Close) are single-owner: run them from one
// goroutine with no queries in flight.
type Repository struct {
	Dir     string
	Store   *storage.Store
	Syms    *xmlmodel.Symbols
	Skel    *skeleton.Skeleton
	Classes *skeleton.Classes
	Vectors vector.Set

	// Health is the repository's quarantine table: vectors whose reads
	// surfaced persistent corruption, fenced off until re-verified. Set by
	// Open; engines over this repository (core.NewRepoEngine) consult and
	// feed it.
	Health *storage.Health

	// epoch counts committed mutations since Open: Append bumps it after
	// its last durable commit step. A query result is valid exactly for
	// the epoch it was evaluated under, which is what lets result caches
	// key on (query, epoch) and never serve a pre-append answer
	// post-append.
	epoch atomic.Uint64
}

// Epoch returns the repository's append epoch: 0 at Open, incremented by
// every committed Append. Safe to read concurrently with queries.
func (r *Repository) Epoch() uint64 { return r.epoch.Load() }

const skeletonFile = "skeleton.bin"

// Options configures repository creation and opening.
type Options struct {
	// PoolPages is the buffer pool capacity in 8 KiB pages (default 4096,
	// i.e. 32 MiB — the paper used a 1 GB pool for gigabyte datasets).
	PoolPages int
	// Compress stores data vectors DEFLATE-compressed per page (the §6
	// extension: less I/O for more CPU). Applies to Create only; Open
	// detects the format from the catalog.
	Compress bool
	// FS is the filesystem the repository lives on; nil means the real OS
	// filesystem. Tests inject fault-injecting or crash-simulating
	// filesystems here.
	FS storage.FS
}

func (o Options) poolPages() int {
	if o.PoolPages <= 0 {
		return 4096
	}
	return o.PoolPages
}

func (o Options) fs() storage.FS {
	if o.FS == nil {
		return storage.DefaultFS
	}
	return o.FS
}

// Create vectorizes the XML document read from r into a new repository at
// dir. The directory must not already contain a repository.
//
// The build is crash-safe: everything is written into dir+".building" and
// the finished, fully-fsynced repository is renamed into place as the last
// step. A crash mid-build leaves either no repository (plus a stale
// .building directory that the next Create removes) or the complete one —
// never a half-built directory that Open would have to second-guess.
func Create(r io.Reader, dir string, opts Options) (*Repository, error) {
	fsys := opts.fs()
	for _, name := range []string{ManifestName, skeletonFile} {
		if _, err := fsys.Stat(filepath.Join(dir, name)); err == nil {
			return nil, fmt.Errorf("vectorize: repository already exists at %s", dir)
		}
	}
	building := dir + ".building"
	if err := fsys.RemoveAll(building); err != nil {
		return nil, fmt.Errorf("vectorize: clear stale build dir: %w", err)
	}
	store, err := storage.OpenStoreFS(fsys, building, opts.poolPages())
	if err != nil {
		return nil, err
	}
	syms := xmlmodel.NewSymbols()
	set := vector.CreateDiskSet(store)
	set.SetCompression(opts.Compress)
	sink := NewDiskSink(set)
	skel, err := VectorizeStream(r, syms, sink)
	if err != nil {
		store.Close()
		return nil, err
	}
	if err := sink.Close(); err != nil {
		store.Close()
		return nil, err
	}
	if err := CommitStore(store, skel, syms, set); err != nil {
		store.Close()
		return nil, err
	}
	if err := store.Close(); err != nil {
		return nil, err
	}
	if err := PromoteBuild(fsys, building, dir); err != nil {
		return nil, err
	}
	return Open(dir, opts)
}

// CommitStore makes a store directory a complete repository: the skeleton
// goes down checksummed and atomic, every vector page and file is flushed
// and fsynced, and the manifest is written last. Shared by Create and the
// engine's EvalToDir.
func CommitStore(store *storage.Store, skel *skeleton.Skeleton, syms *xmlmodel.Symbols, set *vector.DiskSet) error {
	return commitRepository(store.FS(), store, store.Dir(), skel, syms, set)
}

// PromoteBuild moves a finished, fully-committed build directory into
// place at dir and fsyncs the parent — the single atomic commit point of a
// bulk build. dir may pre-exist as an empty directory (a caller's mkdir);
// anything non-empty is refused rather than clobbered.
//
//vx:presynced CommitStore fsynced every file in the build dir before promotion
func PromoteBuild(fsys storage.FS, building, dir string) error {
	if entries, err := fsys.ReadDir(dir); err == nil {
		if len(entries) > 0 {
			return fmt.Errorf("vectorize: %s exists and is not empty", dir)
		}
		if err := fsys.Remove(dir); err != nil {
			return err
		}
	} else if !os.IsNotExist(err) {
		return err
	}
	if err := fsys.Rename(building, dir); err != nil {
		return fmt.Errorf("vectorize: commit repository: %w", err)
	}
	return fsys.SyncDir(filepath.Dir(dir))
}

func commitRepository(fsys storage.FS, store *storage.Store, dir string, skel *skeleton.Skeleton, syms *xmlmodel.Symbols, set *vector.DiskSet) error {
	var buf bytes.Buffer
	if err := skeleton.Encode(&buf, skel, syms); err != nil {
		return err
	}
	if err := storage.WriteFileAtomic(fsys, filepath.Join(dir, skeletonFile), buf.Bytes()); err != nil {
		return err
	}
	if err := store.SyncAll(); err != nil {
		return err
	}
	vecPages, err := set.Files()
	if err != nil {
		return err
	}
	return writeManifest(fsys, dir, vecPages)
}

// Open opens an existing repository: the manifest is validated, the
// skeleton loads into memory (checksum-verified), and the vectors stay on
// disk until a query touches them.
//
// A repository that a crash left one commit step short — files newer than
// the manifest records, each carrying a valid checksum of its own — is
// adopted and its manifest repaired in place. Files that fail their own
// checksums make Open fail with an error wrapping storage.ErrCorrupt that
// names the file.
func Open(dir string, opts Options) (*Repository, error) {
	fsys := opts.fs()
	m, err := readManifest(fsys, dir)
	if err != nil {
		return nil, err
	}
	stale, err := verifyManifest(fsys, dir, m)
	if err != nil {
		return nil, err
	}
	skelData, err := storage.ReadFileChecksummed(fsys, filepath.Join(dir, skeletonFile))
	if err != nil {
		return nil, fmt.Errorf("vectorize: open repository: %w", err)
	}
	syms := xmlmodel.NewSymbols()
	skel, err := skeleton.Decode(bytes.NewReader(skelData), syms)
	if err != nil {
		return nil, fmt.Errorf("vectorize: decode %s: %v: %w", skeletonFile, err, storage.ErrCorrupt)
	}
	store, err := storage.OpenStoreFS(fsys, dir, opts.poolPages())
	if err != nil {
		return nil, err
	}
	set, err := vector.OpenDiskSet(store)
	if err != nil {
		store.Close()
		return nil, err
	}
	classes := skeleton.NewClasses(skel, syms)
	// Reconcile the catalog against the skeleton. The skeleton is the last
	// file an append commits, so it is the authority: a catalog count above
	// the skeleton's occurrence count is the half-committed tail of an
	// append that crashed between its catalog and skeleton commits — roll
	// it back and the repository reads exactly as before that append. A
	// catalog count below the skeleton's is lost committed data.
	for _, id := range classes.TextClasses() {
		name := classes.VectorName(id)
		want := classes.Count(id)
		got, ok := set.Count(name)
		if !ok {
			store.Close()
			return nil, fmt.Errorf("vectorize: open repository: skeleton text class %s (%d occurrences) has no cataloged vector: %w",
				name, want, storage.ErrCorrupt)
		}
		if got < want {
			store.Close()
			return nil, fmt.Errorf("vectorize: open repository: vector %q: skeleton references %d values but catalog committed only %d: %w",
				name, want, got, storage.ErrCorrupt)
		}
		if got > want {
			if err := set.Rollback(name, want); err != nil {
				store.Close()
				return nil, err
			}
		}
	}
	if stale {
		// The skeleton or catalog on disk is a newer committed version than
		// the manifest records — an append was interrupted after its last
		// file commit. The files are authoritative; bring the manifest back
		// in step.
		vecPages, err := set.Files()
		if err == nil {
			err = writeManifest(fsys, dir, vecPages)
		}
		if err != nil {
			store.Close()
			return nil, fmt.Errorf("vectorize: repair manifest: %w", err)
		}
	}
	return &Repository{
		Dir:     dir,
		Store:   store,
		Syms:    syms,
		Skel:    skel,
		Classes: classes,
		Vectors: set,
		Health:  storage.NewHealth(),
	}, nil
}

// Close flushes and closes the underlying store.
func (r *Repository) Close() error { return r.Store.Close() }

// VerifyVector re-reads one vector from disk end to end (dropping any
// buffered pages first) and, when it verifies clean, clears its
// quarantine. The returned error is the verification failure, if any —
// the vector then stays quarantined with the refreshed reason.
func (r *Repository) VerifyVector(name string) error {
	set, ok := r.Vectors.(*vector.DiskSet)
	if !ok {
		return fmt.Errorf("vectorize: repository vectors are not disk-backed")
	}
	if err := set.Reverify(name); err != nil {
		if _, ok := r.Health.Quarantined(name); ok {
			// Refresh the reason: the re-verify failure is the current truth.
			r.Health.Clear(name)
			r.Health.Quarantine(name, err.Error())
		}
		return err
	}
	r.Health.Clear(name)
	return nil
}

// ReverifyQuarantined re-verifies every quarantined vector, clearing the
// ones that now read clean (the corruption was upstream of the disk, or
// an operator repaired the file) and keeping the rest. It returns the
// cleared and kept vector names — the quarantine-clear endpoint's
// response body.
func (r *Repository) ReverifyQuarantined() (cleared, kept []string) {
	for _, e := range r.Health.List() {
		if err := r.VerifyVector(e.Vector); err != nil {
			kept = append(kept, e.Vector)
		} else {
			cleared = append(cleared, e.Vector)
		}
	}
	return cleared, kept
}

// WriteXML reconstructs the stored document as XML text.
func (r *Repository) WriteXML(w io.Writer) error {
	return ReconstructXML(r.Skel, r.Classes, r.Vectors, r.Syms, w)
}

// MemRepository bundles an in-memory vectorized document for tests, small
// workloads and query results.
type MemRepository struct {
	Syms    *xmlmodel.Symbols
	Skel    *skeleton.Skeleton
	Classes *skeleton.Classes
	Vectors vector.Set
}

// FromTree vectorizes an in-memory tree into a MemRepository.
func FromTree(root *xmlmodel.Node, syms *xmlmodel.Symbols) (*MemRepository, error) {
	skel, set, err := VectorizeTree(root, syms)
	if err != nil {
		return nil, err
	}
	return &MemRepository{
		Syms:    syms,
		Skel:    skel,
		Classes: skeleton.NewClasses(skel, syms),
		Vectors: set,
	}, nil
}

// FromString vectorizes an XML string into a MemRepository.
func FromString(doc string, syms *xmlmodel.Symbols) (*MemRepository, error) {
	root, err := xmlmodel.ParseString(doc, syms)
	if err != nil {
		return nil, err
	}
	return FromTree(root, syms)
}

// Append adds the children of a document fragment to the end of the
// stored document — the incremental-maintenance direction of §6 ("XML
// documents are typically static, and if not, there may be promising
// techniques for updating vectorized XML data"). The fragment's root tag
// must equal the repository's root tag; its children become the last
// children of the stored root. Data vectors are extended in place (their
// positions stay aligned with the grown classes), and the skeleton file
// is rewritten, which is cheap because skeletons are small.
//
// The commit order makes a crash at any point recoverable: vector pages
// are flushed and their files fsynced first, then the catalog, then the
// skeleton (each checksummed and renamed into place atomically), then the
// manifest. Appends only ever extend vector tails that the previous
// skeleton and catalog never reference, so every prefix of the sequence
// leaves a repository that opens and queries consistently — either fully
// pre-append, fully post-append, or post-append with a manifest one step
// behind, which Open repairs.
func (r *Repository) Append(frag io.Reader) error {
	set, ok := r.Vectors.(*vector.DiskSet)
	if !ok {
		return fmt.Errorf("vectorize: Append requires a disk-backed repository")
	}
	b := skeleton.NewBuilder()
	oldRoot := b.Import(r.Skel.Root)

	sink := NewAppendSink(set)
	vz := NewVectorizer(r.Syms, sink)
	vz.UseBuilder(b)
	if err := xmlmodel.NewParser(frag, r.Syms).Run(vz); err != nil {
		return err
	}
	fragSkel, err := vz.Skeleton()
	if err != nil {
		return err
	}
	if fragSkel.Root.Tag != r.Skel.Root.Tag {
		return fmt.Errorf("vectorize: fragment root %q does not match document root %q",
			r.Syms.Name(fragSkel.Root.Tag), r.Syms.Name(r.Skel.Root.Tag))
	}
	if err := sink.Close(); err != nil {
		return err
	}

	edges := make([]skeleton.Edge, 0, len(oldRoot.Edges)+len(fragSkel.Root.Edges))
	edges = append(edges, oldRoot.Edges...)
	edges = append(edges, fragSkel.Root.Edges...)
	newRoot := b.Make(r.Skel.Root.Tag, edges)
	// Compact: the scratch builder holds the now-dead old and fragment
	// roots; re-import into a fresh builder so the skeleton contains only
	// reachable nodes.
	final := skeleton.NewBuilder()
	newSkel := final.Finish(final.Import(newRoot))

	// Commit the new skeleton (checksummed, fsynced, renamed into place,
	// parent directory fsynced), then the manifest. sink.Close above already
	// committed the vector data and catalog durably in that order.
	fsys := r.Store.FS()
	var buf bytes.Buffer
	if err := skeleton.Encode(&buf, newSkel, r.Syms); err != nil {
		return err
	}
	if err := storage.WriteFileAtomic(fsys, filepath.Join(r.Dir, skeletonFile), buf.Bytes()); err != nil {
		return err
	}
	vecPages, err := set.Files()
	if err != nil {
		return err
	}
	if err := writeManifest(fsys, r.Dir, vecPages); err != nil {
		return err
	}
	r.Skel = newSkel
	r.Classes = skeleton.NewClasses(newSkel, r.Syms)
	// The append is fully committed; results evaluated before this point
	// belong to the previous epoch.
	r.epoch.Add(1)
	return nil
}
