package vectorize

import (
	"fmt"
	"io"
	"os"
	"path/filepath"

	"vxml/internal/skeleton"
	"vxml/internal/storage"
	"vxml/internal/vector"
	"vxml/internal/xmlmodel"
)

// Repository is an opened vectorized XML store: the skeleton (in memory —
// the paper's central assumption is that compressed skeletons fit in main
// memory), the class registry, and the lazily-loaded data vectors.
//
// Concurrency: an opened Repository is safe to share across goroutines
// for querying — the skeleton is immutable, the class registry locks its
// lazy memos, the vector set locks its lazy opens, and the buffer pool
// underneath is concurrency-safe. Serve each query through its own engine
// (core.NewRepoEngine) or share one engine; both are safe — a per-query
// engine additionally isolates index builds and statistics. Mutating
// operations (Create, Append, Close) are single-owner: run them from one
// goroutine with no queries in flight.
type Repository struct {
	Dir     string
	Store   *storage.Store
	Syms    *xmlmodel.Symbols
	Skel    *skeleton.Skeleton
	Classes *skeleton.Classes
	Vectors vector.Set
}

const skeletonFile = "skeleton.bin"

// Options configures repository creation and opening.
type Options struct {
	// PoolPages is the buffer pool capacity in 8 KiB pages (default 4096,
	// i.e. 32 MiB — the paper used a 1 GB pool for gigabyte datasets).
	PoolPages int
	// Compress stores data vectors DEFLATE-compressed per page (the §6
	// extension: less I/O for more CPU). Applies to Create only; Open
	// detects the format from the catalog.
	Compress bool
}

func (o Options) poolPages() int {
	if o.PoolPages <= 0 {
		return 4096
	}
	return o.PoolPages
}

// Create vectorizes the XML document read from r into a new repository at
// dir. The directory must not already contain a repository.
func Create(r io.Reader, dir string, opts Options) (*Repository, error) {
	if _, err := os.Stat(filepath.Join(dir, skeletonFile)); err == nil {
		return nil, fmt.Errorf("vectorize: repository already exists at %s", dir)
	}
	store, err := storage.OpenStore(dir, opts.poolPages())
	if err != nil {
		return nil, err
	}
	syms := xmlmodel.NewSymbols()
	set := vector.CreateDiskSet(store)
	set.SetCompression(opts.Compress)
	sink := NewDiskSink(set)
	skel, err := VectorizeStream(r, syms, sink)
	if err != nil {
		store.Close()
		return nil, err
	}
	if err := sink.Close(); err != nil {
		store.Close()
		return nil, err
	}
	f, err := os.Create(filepath.Join(dir, skeletonFile))
	if err != nil {
		store.Close()
		return nil, err
	}
	if err := skeleton.Encode(f, skel, syms); err != nil {
		f.Close()
		store.Close()
		return nil, err
	}
	if err := f.Close(); err != nil {
		store.Close()
		return nil, err
	}
	return &Repository{
		Dir:     dir,
		Store:   store,
		Syms:    syms,
		Skel:    skel,
		Classes: skeleton.NewClasses(skel, syms),
		Vectors: sink.Set,
	}, nil
}

// Open opens an existing repository: the skeleton loads into memory, the
// vectors stay on disk until a query touches them.
func Open(dir string, opts Options) (*Repository, error) {
	f, err := os.Open(filepath.Join(dir, skeletonFile))
	if err != nil {
		return nil, fmt.Errorf("vectorize: open repository: %w", err)
	}
	syms := xmlmodel.NewSymbols()
	skel, err := skeleton.Decode(f, syms)
	f.Close()
	if err != nil {
		return nil, err
	}
	store, err := storage.OpenStore(dir, opts.poolPages())
	if err != nil {
		return nil, err
	}
	set, err := vector.OpenDiskSet(store)
	if err != nil {
		store.Close()
		return nil, err
	}
	return &Repository{
		Dir:     dir,
		Store:   store,
		Syms:    syms,
		Skel:    skel,
		Classes: skeleton.NewClasses(skel, syms),
		Vectors: set,
	}, nil
}

// Close flushes and closes the underlying store.
func (r *Repository) Close() error { return r.Store.Close() }

// WriteXML reconstructs the stored document as XML text.
func (r *Repository) WriteXML(w io.Writer) error {
	return ReconstructXML(r.Skel, r.Classes, r.Vectors, r.Syms, w)
}

// MemRepository bundles an in-memory vectorized document for tests, small
// workloads and query results.
type MemRepository struct {
	Syms    *xmlmodel.Symbols
	Skel    *skeleton.Skeleton
	Classes *skeleton.Classes
	Vectors vector.Set
}

// FromTree vectorizes an in-memory tree into a MemRepository.
func FromTree(root *xmlmodel.Node, syms *xmlmodel.Symbols) (*MemRepository, error) {
	skel, set, err := VectorizeTree(root, syms)
	if err != nil {
		return nil, err
	}
	return &MemRepository{
		Syms:    syms,
		Skel:    skel,
		Classes: skeleton.NewClasses(skel, syms),
		Vectors: set,
	}, nil
}

// FromString vectorizes an XML string into a MemRepository.
func FromString(doc string, syms *xmlmodel.Symbols) (*MemRepository, error) {
	root, err := xmlmodel.ParseString(doc, syms)
	if err != nil {
		return nil, err
	}
	return FromTree(root, syms)
}

// Append adds the children of a document fragment to the end of the
// stored document — the incremental-maintenance direction of §6 ("XML
// documents are typically static, and if not, there may be promising
// techniques for updating vectorized XML data"). The fragment's root tag
// must equal the repository's root tag; its children become the last
// children of the stored root. Data vectors are extended in place (their
// positions stay aligned with the grown classes), and the skeleton file
// is rewritten, which is cheap because skeletons are small.
func (r *Repository) Append(frag io.Reader) error {
	set, ok := r.Vectors.(*vector.DiskSet)
	if !ok {
		return fmt.Errorf("vectorize: Append requires a disk-backed repository")
	}
	b := skeleton.NewBuilder()
	oldRoot := b.Import(r.Skel.Root)

	sink := NewAppendSink(set)
	vz := NewVectorizer(r.Syms, sink)
	vz.UseBuilder(b)
	if err := xmlmodel.NewParser(frag, r.Syms).Run(vz); err != nil {
		return err
	}
	fragSkel, err := vz.Skeleton()
	if err != nil {
		return err
	}
	if fragSkel.Root.Tag != r.Skel.Root.Tag {
		return fmt.Errorf("vectorize: fragment root %q does not match document root %q",
			r.Syms.Name(fragSkel.Root.Tag), r.Syms.Name(r.Skel.Root.Tag))
	}
	if err := sink.Close(); err != nil {
		return err
	}

	edges := make([]skeleton.Edge, 0, len(oldRoot.Edges)+len(fragSkel.Root.Edges))
	edges = append(edges, oldRoot.Edges...)
	edges = append(edges, fragSkel.Root.Edges...)
	newRoot := b.Make(r.Skel.Root.Tag, edges)
	// Compact: the scratch builder holds the now-dead old and fragment
	// roots; re-import into a fresh builder so the skeleton contains only
	// reachable nodes.
	final := skeleton.NewBuilder()
	newSkel := final.Finish(final.Import(newRoot))

	// Rewrite the skeleton file atomically.
	tmp := filepath.Join(r.Dir, skeletonFile+".tmp")
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := skeleton.Encode(f, newSkel, r.Syms); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, filepath.Join(r.Dir, skeletonFile)); err != nil {
		return err
	}
	r.Skel = newSkel
	r.Classes = skeleton.NewClasses(newSkel, r.Syms)
	return nil
}
