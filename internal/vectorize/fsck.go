package vectorize

import (
	"fmt"
	"path/filepath"
	"sort"
	"strings"

	"vxml/internal/storage"
	"vxml/internal/vector"
)

// FsckReport is the result of a clean Fsck run: what was verified, plus
// warnings for benign anomalies that do not make the repository invalid
// (orphaned append tails, unreferenced files).
type FsckReport struct {
	Vectors   int64 // vectors fully scanned
	Values    int64 // values decoded across all vectors
	PagesRead int64 // pages read (each CRC-verified on the way in)
	Warnings  []string
}

// Fsck deep-verifies the repository at dir and returns a report, or the
// first corruption found as an error wrapping storage.ErrCorrupt (naming
// the file, and where possible the page or offset). It checks:
//
//   - the manifest parses, and every file it lists is present with the
//     committed size/checksum (or is a newer self-consistent version left
//     by an interrupted append — reported as a warning, not an error);
//   - the skeleton decodes under its checksum footer;
//   - every page of every vector passes its CRC32C trailer and every
//     record decodes, by scanning each vector end to end;
//   - the skeleton's text-class occurrence counts (the '#'-marker counts)
//     equal the catalog counts and the scanned vector lengths — the
//     cross-structure invariant queries rely on;
//   - files in the directory that nothing references are warned about.
//
// Fsck never panics on hostile input and never writes to the repository.
func Fsck(dir string, opts Options) (*FsckReport, error) {
	fsys := opts.fs()
	rep := &FsckReport{}

	m, err := readManifest(fsys, dir)
	if err != nil {
		return nil, err
	}
	stale, err := verifyManifest(fsys, dir, m)
	if err != nil {
		return nil, err
	}
	if stale {
		rep.Warnings = append(rep.Warnings,
			"manifest lags a newer committed skeleton/catalog (interrupted append; opening the repository repairs it)")
	}

	r, err := Open(dir, Options{PoolPages: opts.poolPages(), FS: opts.FS})
	if err != nil {
		return nil, err
	}
	defer r.Close()
	set, ok := r.Vectors.(*vector.DiskSet)
	if !ok {
		return nil, fmt.Errorf("vectorize: fsck: %s is not disk-backed", dir)
	}

	// Cross-check the skeleton against the catalog: every text class's
	// occurrence count (how many '#' markers its runs cover) must have a
	// matching vector with exactly that many values.
	referenced := map[string]bool{
		skeletonFile:       true,
		vector.CatalogName: true,
		ManifestName:       true,
	}
	for _, id := range r.Classes.TextClasses() {
		name := r.Classes.VectorName(id)
		want := r.Classes.Count(id)
		got, ok := set.Count(name)
		if !ok {
			return nil, fmt.Errorf("vectorize: fsck: skeleton text class %s has %d occurrences but no vector in the catalog: %w",
				name, want, storage.ErrCorrupt)
		}
		if got != want {
			return nil, fmt.Errorf("vectorize: fsck: vector %q: skeleton counts %d occurrences, catalog records %d values: %w",
				name, want, got, storage.ErrCorrupt)
		}
		if file, ok := set.FileOf(name); ok {
			referenced[file] = true
		}
	}
	catalogOnly := 0
	for _, name := range set.Names() {
		if file, ok := set.FileOf(name); ok {
			if !referenced[file] {
				catalogOnly++
			}
			referenced[file] = true
		}
	}
	if catalogOnly > 0 {
		rep.Warnings = append(rep.Warnings,
			fmt.Sprintf("%d cataloged vector(s) not reachable from the skeleton", catalogOnly))
	}

	// Full scan of every vector: reads every page through the CRC-checking
	// pool path and decodes every record.
	before := r.Store.Pool().StatsSnapshot()
	for _, name := range set.Names() {
		v, err := set.Vector(name)
		if err != nil {
			return nil, fmt.Errorf("vectorize: fsck: %w", err)
		}
		var n int64
		if err := v.Scan(0, v.Len(), func(int64, []byte) error { n++; return nil }); err != nil {
			return nil, fmt.Errorf("vectorize: fsck: scan vector %q: %w", name, err)
		}
		if want, _ := set.Count(name); n != want {
			return nil, fmt.Errorf("vectorize: fsck: vector %q: scanned %d values, catalog records %d: %w",
				name, n, want, storage.ErrCorrupt)
		}
		rep.Vectors++
		rep.Values += n
	}
	after := r.Store.Pool().StatsSnapshot()
	rep.PagesRead = after.PagesRead - before.PagesRead

	// Anything on disk that neither the manifest nor the catalog accounts
	// for. Orphan tails live inside referenced files; whole unreferenced
	// files are stranded space (a crashed Create never leaves these inside
	// dir, but users copy things around).
	entries, err := fsys.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var orphans []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || referenced[name] || strings.HasSuffix(name, ".tmp") {
			continue
		}
		if _, listed := m.Files[name]; listed {
			continue
		}
		orphans = append(orphans, name)
	}
	sort.Strings(orphans)
	for _, name := range orphans {
		rep.Warnings = append(rep.Warnings,
			fmt.Sprintf("unreferenced file %s", filepath.Join(dir, name)))
	}
	return rep, nil
}
