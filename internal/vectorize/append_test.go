package vectorize

import (
	"fmt"
	"strings"
	"testing"

	"vxml/internal/vector"
	"vxml/internal/xmlmodel"
)

func TestRepositoryAppend(t *testing.T) {
	dir := t.TempDir()
	repo, err := Create(strings.NewReader(
		`<bib><book><title>A</title></book><book><title>B</title></book></bib>`),
		dir, Options{PoolPages: 64})
	if err != nil {
		t.Fatal(err)
	}
	// Append two more books and a new element kind.
	err = repo.Append(strings.NewReader(
		`<bib><book><title>C</title></book><article><who>X</who></article></bib>`))
	if err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if err := repo.WriteXML(&out); err != nil {
		t.Fatal(err)
	}
	want := "<bib><book><title>A</title></book><book><title>B</title></book>" +
		"<book><title>C</title></book><article><who>X</who></article></bib>"
	if out.String() != want {
		t.Errorf("after append:\n%s", out.String())
	}
	// The title vector grew in place; the new path got its own vector.
	v, err := repo.Vectors.Vector("/bib/book/title")
	if err != nil {
		t.Fatal(err)
	}
	vals, _ := vector.All(v)
	if strings.Join(vals, ",") != "A,B,C" {
		t.Errorf("titles = %v", vals)
	}
	if _, err := repo.Vectors.Vector("/bib/article/who"); err != nil {
		t.Errorf("new vector missing: %v", err)
	}
	if err := repo.Close(); err != nil {
		t.Fatal(err)
	}

	// Persistence: reopen and check everything survived.
	repo2, err := Open(dir, Options{PoolPages: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer repo2.Close()
	var out2 strings.Builder
	if err := repo2.WriteXML(&out2); err != nil {
		t.Fatal(err)
	}
	if out2.String() != want {
		t.Errorf("after reopen:\n%s", out2.String())
	}
}

func TestAppendRejectsWrongRoot(t *testing.T) {
	repo, err := Create(strings.NewReader(`<bib><x>1</x></bib>`), t.TempDir(), Options{PoolPages: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer repo.Close()
	if err := repo.Append(strings.NewReader(`<other><x>2</x></other>`)); err == nil {
		t.Error("append with mismatched root succeeded")
	}
}

func TestAppendManyBatches(t *testing.T) {
	dir := t.TempDir()
	repo, err := Create(strings.NewReader(`<log><e><n>0</n></e></log>`), dir, Options{PoolPages: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer repo.Close()
	total := 1
	for batch := 1; batch <= 5; batch++ {
		var frag strings.Builder
		frag.WriteString("<log>")
		for i := 0; i < 500; i++ {
			fmt.Fprintf(&frag, "<e><n>%d</n></e>", total)
			total++
		}
		frag.WriteString("</log>")
		if err := repo.Append(strings.NewReader(frag.String())); err != nil {
			t.Fatalf("batch %d: %v", batch, err)
		}
	}
	v, err := repo.Vectors.Vector("/log/e/n")
	if err != nil {
		t.Fatal(err)
	}
	if v.Len() != int64(total) {
		t.Fatalf("vector len = %d, want %d", v.Len(), total)
	}
	vals, _ := vector.All(v)
	for i, got := range vals {
		if got != fmt.Sprint(i) {
			t.Fatalf("val[%d] = %q", i, got)
		}
	}
	// Skeleton stays compact: the repeated <e> shares one node.
	if repo.Skel.NumNodes() > 8 {
		t.Errorf("skeleton nodes = %d", repo.Skel.NumNodes())
	}
	if cnt := repo.Classes.Count(repo.Classes.Resolve("/log/e")); cnt != int64(total) {
		t.Errorf("class count = %d, want %d", cnt, total)
	}
}

func TestAppendCompressedRepository(t *testing.T) {
	dir := t.TempDir()
	repo, err := Create(strings.NewReader(`<d><v>alpha</v><v>beta</v></d>`), dir,
		Options{PoolPages: 64, Compress: true})
	if err != nil {
		t.Fatal(err)
	}
	defer repo.Close()
	if err := repo.Append(strings.NewReader(`<d><v>gamma</v></d>`)); err != nil {
		t.Fatal(err)
	}
	v, err := repo.Vectors.Vector("/d/v")
	if err != nil {
		t.Fatal(err)
	}
	vals, err := vector.All(v)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Join(vals, ",") != "alpha,beta,gamma" {
		t.Errorf("vals = %v", vals)
	}
}

// TestAppendMatchesFromScratch: appending fragments produces the same
// repository state as vectorizing the concatenated document.
func TestAppendMatchesFromScratch(t *testing.T) {
	part1 := `<db><r><a>1</a><b>x</b></r><r><a>2</a></r></db>`
	part2 := `<db><r><b>y</b></r><s><c>deep</c></s></db>`
	combined := `<db><r><a>1</a><b>x</b></r><r><a>2</a></r><r><b>y</b></r><s><c>deep</c></s></db>`

	dir := t.TempDir()
	repo, err := Create(strings.NewReader(part1), dir, Options{PoolPages: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer repo.Close()
	if err := repo.Append(strings.NewReader(part2)); err != nil {
		t.Fatal(err)
	}
	var got strings.Builder
	if err := repo.WriteXML(&got); err != nil {
		t.Fatal(err)
	}

	syms := xmlmodel.NewSymbols()
	ref, err := FromString(combined, syms)
	if err != nil {
		t.Fatal(err)
	}
	var want strings.Builder
	if err := ReconstructXML(ref.Skel, ref.Classes, ref.Vectors, syms, &want); err != nil {
		t.Fatal(err)
	}
	if got.String() != want.String() {
		t.Errorf("append != scratch:\nappend:  %s\nscratch: %s", got.String(), want.String())
	}
	if repo.Skel.NumNodes() != ref.Skel.NumNodes() {
		t.Errorf("skeleton nodes %d vs %d", repo.Skel.NumNodes(), ref.Skel.NumNodes())
	}
}
