package vectorize

import (
	"fmt"
	"io"

	"vxml/internal/skeleton"
	"vxml/internal/vector"
	"vxml/internal/xmlmodel"
)

// Reconstruct replays the original document from its vectorized
// representation as an event stream to h, in linear time in the output
// (Prop. 2.2): a depth-first traversal of the compressed skeleton keeps a
// cursor into each data vector and emits the next value at each '#'.
func Reconstruct(skel *skeleton.Skeleton, cls *skeleton.Classes, vecs vector.Set, h xmlmodel.Handler) error {
	cursors := make(map[skeleton.ClassID]*vecCursor)
	// classStack tracks the class of each open element.
	classStack := make([]skeleton.ClassID, 0, 32)
	depth := 0
	enter := func(n *skeleton.Node) error {
		if n.IsText {
			var id skeleton.ClassID
			if depth == 0 {
				return fmt.Errorf("vectorize: text marker at root")
			}
			id = cls.Child(classStack[len(classStack)-1], skeleton.TextStep)
			if id == skeleton.NoClass {
				return fmt.Errorf("vectorize: no text class under %s", cls.Path(classStack[len(classStack)-1]))
			}
			cur, ok := cursors[id]
			if !ok {
				v, err := vecs.Vector(cls.VectorName(id))
				if err != nil {
					return err
				}
				cur = &vecCursor{v: v}
				cursors[id] = cur
			}
			val, err := cur.next()
			if err != nil {
				return err
			}
			return h.Event(xmlmodel.Event{Kind: xmlmodel.Text, Text: val})
		}
		var id skeleton.ClassID
		if depth == 0 {
			id = cls.Root()
		} else {
			id = cls.Child(classStack[len(classStack)-1], n.Tag)
		}
		if id == skeleton.NoClass {
			return fmt.Errorf("vectorize: skeleton/classes mismatch at depth %d", depth)
		}
		classStack = append(classStack, id)
		depth++
		return h.Event(xmlmodel.Event{Kind: xmlmodel.StartElement, Tag: n.Tag})
	}
	leave := func(n *skeleton.Node) error {
		if n.IsText {
			return nil
		}
		classStack = classStack[:len(classStack)-1]
		depth--
		return h.Event(xmlmodel.Event{Kind: xmlmodel.EndElement, Tag: n.Tag})
	}
	return skel.Walk(enter, leave)
}

// ReconstructXML writes the document as XML text to w.
func ReconstructXML(skel *skeleton.Skeleton, cls *skeleton.Classes, vecs vector.Set, syms *xmlmodel.Symbols, w io.Writer) error {
	s := xmlmodel.NewSerializer(w, syms)
	if err := Reconstruct(skel, cls, vecs, s); err != nil {
		return err
	}
	return s.Flush()
}

// ReconstructTree materializes the document as an in-memory tree.
func ReconstructTree(skel *skeleton.Skeleton, cls *skeleton.Classes, vecs vector.Set) (*xmlmodel.Node, error) {
	var b xmlmodel.TreeBuilder
	if err := Reconstruct(skel, cls, vecs, &b); err != nil {
		return nil, err
	}
	return b.Root, nil
}

// vecCursor streams one vector sequentially with chunked prefetch, so the
// reconstruction's many small reads amortize into page-sized scans.
type vecCursor struct {
	v        vector.Vector
	pos      int64
	buf      []string
	bufStart int64
}

const cursorChunk = 256

func (c *vecCursor) next() (string, error) {
	if c.pos < c.bufStart || c.pos >= c.bufStart+int64(len(c.buf)) {
		n := int64(cursorChunk)
		if rem := c.v.Len() - c.pos; rem < n {
			n = rem
		}
		if n <= 0 {
			return "", fmt.Errorf("vectorize: vector exhausted at %d/%d", c.pos, c.v.Len())
		}
		c.buf = c.buf[:0]
		err := c.v.Scan(c.pos, n, func(_ int64, val []byte) error {
			c.buf = append(c.buf, string(val))
			return nil
		})
		if err != nil {
			return "", err
		}
		c.bufStart = c.pos
	}
	val := c.buf[c.pos-c.bufStart]
	c.pos++
	return val, nil
}
