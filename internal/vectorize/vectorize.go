// Package vectorize ties the decomposition together: it turns an XML
// document into its vectorized representation VEC(T) = (S, V) in a single
// linear pass (Prop. 2.1), reconstructs the document losslessly from
// (S, V) (Prop. 2.2), and manages on-disk repositories holding a skeleton
// file plus one clustered vector file per root-to-text path.
package vectorize

import (
	"fmt"
	"io"

	"vxml/internal/skeleton"
	"vxml/internal/vector"
	"vxml/internal/xmlmodel"
)

// Sink receives data values during vectorization, keyed by vector name
// (the tag path to the text's parent element, e.g. "/bib/book/title").
//
// Append must copy val before returning: callers may pass memory they
// reuse or unpin immediately after the call — the query engine's result
// path hands over bytes that alias a pinned buffer-pool frame (the
// Vector.Scan contract), which is recycled as soon as the scan moves on.
// Sinks are single-owner: one goroutine drives a sink from creation
// through Close.
type Sink interface {
	Append(name string, val []byte) error
}

// MemSink appends into an in-memory vector set. The string conversion
// copies val, satisfying the Sink contract.
type MemSink struct{ Set *vector.MemSet }

// Append implements Sink.
func (m MemSink) Append(name string, val []byte) error {
	m.Set.Add(name).Append(string(val))
	return nil
}

// DiskSink appends into a DiskSet, creating vector writers lazily.
// Call Close after the parse to finalize all vectors. The vector writers
// copy val into their own pages before returning, satisfying the Sink
// contract.
type DiskSink struct {
	Set     *vector.DiskSet
	writers map[string]vector.SetWriter
}

// NewDiskSink returns a sink writing into set.
func NewDiskSink(set *vector.DiskSet) *DiskSink {
	return &DiskSink{Set: set, writers: make(map[string]vector.SetWriter)}
}

// Append implements Sink.
func (d *DiskSink) Append(name string, val []byte) error {
	w, ok := d.writers[name]
	if !ok {
		var err error
		w, err = d.Set.NewWriter(name)
		if err != nil {
			return err
		}
		d.writers[name] = w
	}
	return w.Append(val)
}

// Close finalizes all vectors and saves the catalog.
func (d *DiskSink) Close() error {
	for name, w := range d.writers {
		if err := d.Set.CloseVector(name, w); err != nil {
			return err
		}
	}
	return d.Set.Save()
}

// Vectorizer is an xmlmodel.Handler that builds the compressed skeleton
// and streams data values to a Sink as the document is parsed — one pass,
// linear time, with hash-consing performed bottom-up as elements close.
type Vectorizer struct {
	builder *skeleton.Builder
	syms    *xmlmodel.Symbols
	sink    Sink

	frames []frame
	path   *pathTrie
	root   *skeleton.Node
}

type frame struct {
	tag   xmlmodel.Sym
	edges []skeleton.Edge
	path  *pathTrie
}

// pathTrie interns tag paths so vector names are built once per distinct
// path rather than once per node.
type pathTrie struct {
	name string
	kids map[xmlmodel.Sym]*pathTrie
}

func (p *pathTrie) child(tag xmlmodel.Sym, syms *xmlmodel.Symbols) *pathTrie {
	if p.kids == nil {
		p.kids = make(map[xmlmodel.Sym]*pathTrie)
	}
	if k, ok := p.kids[tag]; ok {
		return k
	}
	k := &pathTrie{name: p.name + "/" + syms.Name(tag)}
	p.kids[tag] = k
	return k
}

// NewVectorizer returns a vectorizer delivering values to sink.
func NewVectorizer(syms *xmlmodel.Symbols, sink Sink) *Vectorizer {
	return &Vectorizer{builder: skeleton.NewBuilder(), syms: syms, sink: sink}
}

// Event implements xmlmodel.Handler.
func (v *Vectorizer) Event(ev xmlmodel.Event) error {
	switch ev.Kind {
	case xmlmodel.StartElement:
		var p *pathTrie
		if len(v.frames) == 0 {
			p = &pathTrie{name: "/" + v.syms.Name(ev.Tag)}
		} else {
			p = v.frames[len(v.frames)-1].path.child(ev.Tag, v.syms)
		}
		v.frames = append(v.frames, frame{tag: ev.Tag, path: p})
	case xmlmodel.Text:
		if len(v.frames) == 0 {
			return fmt.Errorf("vectorize: text outside root")
		}
		top := &v.frames[len(v.frames)-1]
		if err := v.sink.Append(top.path.name, []byte(ev.Text)); err != nil {
			return err
		}
		top.edges = append(top.edges, skeleton.Edge{Child: v.builder.Text(), Count: 1})
	case xmlmodel.EndElement:
		top := v.frames[len(v.frames)-1]
		v.frames = v.frames[:len(v.frames)-1]
		n := v.builder.Make(top.tag, top.edges)
		if len(v.frames) == 0 {
			v.root = n
		} else {
			parent := &v.frames[len(v.frames)-1]
			parent.edges = append(parent.edges, skeleton.Edge{Child: n, Count: 1})
		}
	}
	return nil
}

// Skeleton returns the finished compressed skeleton. Call it only after a
// complete, balanced event stream.
func (v *Vectorizer) Skeleton() (*skeleton.Skeleton, error) {
	if v.root == nil || len(v.frames) != 0 {
		return nil, fmt.Errorf("vectorize: incomplete document (depth %d)", len(v.frames))
	}
	return v.builder.Finish(v.root), nil
}

// Builder exposes the vectorizer's hash-cons builder (the query engine
// extends result skeletons with it).
func (v *Vectorizer) Builder() *skeleton.Builder { return v.builder }

// VectorizeStream parses XML from r and vectorizes it into sink, returning
// the skeleton.
func VectorizeStream(r io.Reader, syms *xmlmodel.Symbols, sink Sink) (*skeleton.Skeleton, error) {
	vz := NewVectorizer(syms, sink)
	if err := xmlmodel.NewParser(r, syms).Run(vz); err != nil {
		return nil, err
	}
	return vz.Skeleton()
}

// VectorizeTree vectorizes an in-memory tree into an in-memory vector set.
func VectorizeTree(root *xmlmodel.Node, syms *xmlmodel.Symbols) (*skeleton.Skeleton, *vector.MemSet, error) {
	set := vector.NewMemSet()
	vz := NewVectorizer(syms, MemSink{Set: set})
	if err := xmlmodel.EmitTree(root, vz); err != nil {
		return nil, nil, err
	}
	skel, err := vz.Skeleton()
	if err != nil {
		return nil, nil, err
	}
	return skel, set, nil
}

// UseBuilder replaces the vectorizer's hash-cons builder, so fragments can
// be built into an existing skeleton's builder (used by Repository.Append).
func (v *Vectorizer) UseBuilder(b *skeleton.Builder) { v.builder = b }

// AppendSink writes values to the END of existing DiskSet vectors (creating
// vectors for newly appearing paths) — the incremental-maintenance sink.
type AppendSink struct {
	Set     *vector.DiskSet
	writers map[string]vector.SetWriter
}

// NewAppendSink returns a sink appending into set.
func NewAppendSink(set *vector.DiskSet) *AppendSink {
	return &AppendSink{Set: set, writers: make(map[string]vector.SetWriter)}
}

// Append implements Sink.
func (d *AppendSink) Append(name string, val []byte) error {
	w, ok := d.writers[name]
	if !ok {
		var err error
		w, err = d.Set.AppendWriter(name)
		if err != nil {
			return err
		}
		d.writers[name] = w
	}
	return w.Append(val)
}

// Close finalizes all touched vectors and saves the catalog durably: the
// touched vectors' files are fsynced before the catalog commits, so the
// catalog never records counts whose data could be lost by a crash.
func (d *AppendSink) Close() error {
	touched := make([]string, 0, len(d.writers))
	for name, w := range d.writers {
		if err := d.Set.CloseVector(name, w); err != nil {
			return err
		}
		touched = append(touched, name)
	}
	return d.Set.SaveSync(touched)
}
