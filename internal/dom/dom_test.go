package dom

import (
	"strings"
	"testing"

	"vxml/internal/xmlmodel"
	"vxml/internal/xq"
)

const bibXML = `<bib>
  <book><publisher>SBP</publisher><author>RH</author><title>Curation</title></book>
  <book><publisher>SBP</publisher><author>RH</author><title>XML</title></book>
  <book><publisher>AW</publisher><author>SB</author><title>AXML</title></book>
  <article><author>BC</author><title>P2P</title></article>
  <article><author>RH</author><author>BC</author><title>XStore</title></article>
  <article><author>DD</author><author>RH</author><title>XPath</title></article>
</bib>`

func eval(t *testing.T, doc, src string) string {
	t.Helper()
	syms := xmlmodel.NewSymbols()
	root, err := xmlmodel.ParseString(doc, syms)
	if err != nil {
		t.Fatal(err)
	}
	q, err := xq.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	out, err := NewEvaluator(root, syms).Eval(q)
	if err != nil {
		t.Fatal(err)
	}
	return xmlmodel.TreeString(out, syms)
}

// TestQ0 is the paper's Example 3.1 on the reference interpreter.
func TestQ0(t *testing.T) {
	got := eval(t, bibXML, `<result>
for $d in doc("bib.xml")/bib, $b in $d/book, $a in $d/article
where $b/author = $a/author and $b/publisher = 'SBP'
return $b/title, $a/title
</result>`)
	want := "<result>" +
		"<title>Curation</title><title>XStore</title>" +
		"<title>Curation</title><title>XPath</title>" +
		"<title>XML</title><title>XStore</title>" +
		"<title>XML</title><title>XPath</title>" +
		"</result>"
	if got != want {
		t.Errorf("got %s", got)
	}
}

func TestDescendant(t *testing.T) {
	got := eval(t, `<r><a><n>1</n></a><n>2</n></r>`, `for $n in /r//n return $n`)
	if got != "<result><n>1</n><n>2</n></result>" {
		t.Errorf("got %s", got)
	}
}

func TestDescendantIncludesRootMatch(t *testing.T) {
	got := eval(t, `<n><n>1</n></n>`, `for $x in //n return <hit/>`)
	if strings.Count(got, "<hit/>") != 2 {
		t.Errorf("got %s", got)
	}
}

func TestQualifiers(t *testing.T) {
	got := eval(t, bibXML, `/bib/book[publisher='AW']/title`)
	if got != "<result><title>AXML</title></result>" {
		t.Errorf("got %s", got)
	}
}

func TestTemplate(t *testing.T) {
	got := eval(t, bibXML, `for $b in /bib/book where $b/publisher='AW' return <e>t: {$b/title}</e>`)
	if got != "<result><e>t: <title>AXML</title></e></result>" {
		t.Errorf("got %s", got)
	}
}

func TestBudgetAborts(t *testing.T) {
	syms := xmlmodel.NewSymbols()
	root, _ := xmlmodel.ParseString(bibXML, syms)
	q := xq.MustParse(`for $b in /bib/book return $b`)
	ev := NewEvaluator(root, syms)
	ev.Budget = 3
	if _, err := ev.Eval(q); err != ErrBudget {
		t.Errorf("err = %v, want ErrBudget", err)
	}
}

func TestUnboundVariableError(t *testing.T) {
	syms := xmlmodel.NewSymbols()
	root, _ := xmlmodel.ParseString(bibXML, syms)
	// Build an AST by hand with a reference to an unbound variable in a
	// condition (the parser/planner normally reject this).
	q := &xq.Query{
		ResultTag: "result",
		Bindings:  []xq.Binding{{Var: "$x", Term: xq.PathTerm{Path: xq.Path{Steps: []xq.Step{{Name: "bib"}}}}}},
		Return:    []xq.RetItem{xq.RetPath{Term: xq.PathTerm{Var: "$nope"}}},
	}
	if _, err := NewEvaluator(root, syms).Eval(q); err == nil {
		t.Error("expected error for unbound variable")
	}
}

// TestDescendantNodeSet: path results are node-sets — a node reachable
// through several '//' intermediate ancestors appears once, matching
// XPath semantics and the engine's class-set resolution of chained
// descendant steps.
func TestDescendantNodeSet(t *testing.T) {
	doc := `<root><d><d><d>x</d></d></d></root>`
	got := eval(t, doc, `for $x in /root//d//d return $x`)
	// Matches: the middle d (via the outer d) and the innermost d
	// (reachable via both outer d's — still one node).
	want := `<result><d><d>x</d></d><d>x</d></result>`
	if got != want {
		t.Errorf("got %s\nwant %s", got, want)
	}
}
