// Package dom is the Galax-like baseline of the paper's experiments (§5):
// a straightforward main-memory XQuery interpreter that must load the
// whole document as a tree and evaluates queries node-at-a-time with
// nested loops. It shares the xq value-comparison semantics with the
// vectorized engine, so it also serves as the reference oracle for
// differential testing.
package dom

import (
	"fmt"
	"time"

	"vxml/internal/xmlmodel"
	"vxml/internal/xq"
)

// Evaluator interprets XQ queries over an in-memory tree.
type Evaluator struct {
	syms *xmlmodel.Symbols
	root *xmlmodel.Node

	// Budget bounds the number of nodes materialized into the result (0 =
	// unlimited); exceeding it aborts with ErrBudget. The experiment
	// harness uses it to model Galax's out-of-memory failures.
	Budget int64
	built  int64

	// Deadline aborts evaluation with ErrTimeout once passed (zero =
	// none); checked periodically, modeling the paper's ">50000 s" runs.
	Deadline time.Time
	ticks    int64
}

// ErrBudget is returned when the evaluator's node budget is exhausted.
var ErrBudget = fmt.Errorf("dom: memory budget exhausted")

// ErrTimeout is returned when the evaluator's deadline passes.
var ErrTimeout = fmt.Errorf("dom: evaluation deadline exceeded")

// NewEvaluator returns an evaluator over the given document tree.
func NewEvaluator(root *xmlmodel.Node, syms *xmlmodel.Symbols) *Evaluator {
	return &Evaluator{syms: syms, root: root}
}

// Eval evaluates the query and returns the result tree.
func (ev *Evaluator) Eval(q *xq.Query) (*xmlmodel.Node, error) {
	ev.built = 0
	result := xmlmodel.NewElem(ev.syms.Intern(q.ResultTag))
	binding := make(map[string]*xmlmodel.Node, len(q.Bindings))
	var loop func(i int) error
	loop = func(i int) error {
		if i == len(q.Bindings) {
			ok, err := ev.condsHold(q.Conds, binding)
			if err != nil || !ok {
				return err
			}
			return ev.emit(q.Return, binding, result)
		}
		b := q.Bindings[i]
		nodes, err := ev.evalTerm(b.Term, binding)
		if err != nil {
			return err
		}
		for _, n := range nodes {
			if err := ev.tick(); err != nil {
				return err
			}
			binding[b.Var] = n
			if err := loop(i + 1); err != nil {
				return err
			}
		}
		delete(binding, b.Var)
		return nil
	}
	if err := loop(0); err != nil {
		return nil, err
	}
	return result, nil
}

// evalTerm resolves a path term under the current bindings.
func (ev *Evaluator) evalTerm(t xq.PathTerm, binding map[string]*xmlmodel.Node) ([]*xmlmodel.Node, error) {
	var ctx []*xmlmodel.Node
	if t.Var == "" {
		// Document-rooted: the first step matches against the root element.
		steps := t.Path.Steps
		if len(steps) == 0 {
			return nil, fmt.Errorf("dom: bare document path")
		}
		first, rest := steps[0], steps[1:]
		var seeds []*xmlmodel.Node
		if first.Axis == xq.Child {
			if ev.matchName(ev.root, first.Name) {
				seeds = append(seeds, ev.root)
			}
		} else {
			ev.collectDescendants(ev.root, first.Name, true, &seeds)
		}
		for _, s := range seeds {
			ok, err := ev.qualsHold(s, first.Quals)
			if err != nil {
				return nil, err
			}
			if ok {
				ctx = append(ctx, s)
			}
		}
		return ev.evalSteps(ctx, rest)
	}
	n, ok := binding[t.Var]
	if !ok {
		return nil, fmt.Errorf("dom: unbound variable %s", t.Var)
	}
	return ev.evalSteps([]*xmlmodel.Node{n}, t.Path.Steps)
}

func (ev *Evaluator) evalSteps(ctx []*xmlmodel.Node, steps []xq.Step) ([]*xmlmodel.Node, error) {
	for _, s := range steps {
		var next []*xmlmodel.Node
		for _, n := range ctx {
			if s.Axis == xq.Child {
				for _, k := range n.Kids {
					if !k.IsText() && ev.matchName(k, s.Name) {
						next = append(next, k)
					}
				}
			} else {
				ev.collectDescendants(n, s.Name, false, &next)
			}
		}
		if s.Axis == xq.Descendant && len(ctx) > 1 {
			// A descendant step over a context holding both an ancestor and
			// one of its descendants reaches the shared subtree once per
			// context node. Path results are node-sets (each node once), so
			// deduplicate — this matches both XPath semantics and the
			// engine's class-set resolution of chained '//' steps.
			next = dedupNodes(next)
		}
		if len(s.Quals) > 0 {
			var kept []*xmlmodel.Node
			for _, n := range next {
				ok, err := ev.qualsHold(n, s.Quals)
				if err != nil {
					return nil, err
				}
				if ok {
					kept = append(kept, n)
				}
			}
			next = kept
		}
		ctx = next
	}
	return ctx, nil
}

// dedupNodes removes repeated nodes keeping first occurrences (contexts
// arrive ancestors-first, so first occurrences are in document order).
func dedupNodes(nodes []*xmlmodel.Node) []*xmlmodel.Node {
	seen := make(map[*xmlmodel.Node]bool, len(nodes))
	out := nodes[:0]
	for _, n := range nodes {
		if !seen[n] {
			seen[n] = true
			out = append(out, n)
		}
	}
	return out
}

// collectDescendants gathers descendant elements matching name;
// includeSelf also tests n itself.
func (ev *Evaluator) collectDescendants(n *xmlmodel.Node, name string, includeSelf bool, out *[]*xmlmodel.Node) {
	if includeSelf && !n.IsText() && ev.matchName(n, name) {
		*out = append(*out, n)
	}
	for _, k := range n.Kids {
		if k.IsText() {
			continue
		}
		if ev.matchName(k, name) {
			*out = append(*out, k)
		}
		ev.collectDescendants(k, name, false, out)
	}
}

func (ev *Evaluator) matchName(n *xmlmodel.Node, name string) bool {
	if name == "*" {
		return true
	}
	return ev.syms.Name(n.Tag) == name
}

func (ev *Evaluator) qualsHold(n *xmlmodel.Node, quals []xq.Qual) (bool, error) {
	for _, q := range quals {
		nodes, err := ev.evalSteps([]*xmlmodel.Node{n}, q.Path.Steps)
		if err != nil {
			return false, err
		}
		if q.Op == xq.OpNone {
			if len(nodes) == 0 {
				return false, nil
			}
			continue
		}
		if !anyValueSatisfies(nodes, q.Op, q.Value) {
			return false, nil
		}
	}
	return true, nil
}

// values returns the comparable values of a node: its direct text
// children, each a separate value (matching the engine's text-class
// semantics).
func values(n *xmlmodel.Node) []string {
	var out []string
	for _, k := range n.Kids {
		if k.IsText() {
			out = append(out, k.Text)
		}
	}
	return out
}

func anyValueSatisfies(nodes []*xmlmodel.Node, op xq.CmpOp, c string) bool {
	for _, n := range nodes {
		for _, v := range values(n) {
			if xq.Satisfies(v, op, c) {
				return true
			}
		}
	}
	return false
}

func (ev *Evaluator) condsHold(conds []xq.Cond, binding map[string]*xmlmodel.Node) (bool, error) {
	for _, c := range conds {
		ok, err := ev.condHolds(c, binding)
		if err != nil || !ok {
			return ok, err
		}
	}
	return true, nil
}

func (ev *Evaluator) condHolds(c xq.Cond, binding map[string]*xmlmodel.Node) (bool, error) {
	lvals, err := ev.operandValues(c.Left, binding)
	if err != nil {
		return false, err
	}
	rvals, err := ev.operandValues(c.Right, binding)
	if err != nil {
		return false, err
	}
	for _, l := range lvals {
		for _, r := range rvals {
			if xq.Satisfies(l, c.Op, r) {
				return true, nil
			}
		}
	}
	return false, nil
}

func (ev *Evaluator) operandValues(o xq.Operand, binding map[string]*xmlmodel.Node) ([]string, error) {
	if o.Term == nil {
		return []string{o.Const}, nil
	}
	nodes, err := ev.evalTerm(*o.Term, binding)
	if err != nil {
		return nil, err
	}
	var out []string
	for _, n := range nodes {
		out = append(out, values(n)...)
	}
	return out, nil
}

// emit expands the return items for one variable tuple.
func (ev *Evaluator) emit(items []xq.RetItem, binding map[string]*xmlmodel.Node, parent *xmlmodel.Node) error {
	for _, item := range items {
		switch item := item.(type) {
		case xq.RetText:
			if err := ev.charge(1); err != nil {
				return err
			}
			parent.Append(xmlmodel.NewText(item.Text))
		case xq.RetElem:
			el := xmlmodel.NewElem(ev.syms.Intern(item.Tag))
			if err := ev.charge(1); err != nil {
				return err
			}
			if err := ev.emit(item.Kids, binding, el); err != nil {
				return err
			}
			parent.Append(el)
		case xq.RetPath:
			nodes, err := ev.evalTerm(item.Term, binding)
			if err != nil {
				return err
			}
			for _, n := range nodes {
				if err := ev.charge(int64(n.CountNodes())); err != nil {
					return err
				}
				parent.Append(n.Clone())
			}
		}
	}
	return nil
}

func (ev *Evaluator) charge(n int64) error {
	ev.built += n
	if ev.Budget > 0 && ev.built > ev.Budget {
		return ErrBudget
	}
	return ev.tick()
}

// tick checks the deadline every 4096 calls.
func (ev *Evaluator) tick() error {
	ev.ticks++
	if ev.ticks%4096 == 0 && !ev.Deadline.IsZero() && time.Now().After(ev.Deadline) {
		return ErrTimeout
	}
	return nil
}
