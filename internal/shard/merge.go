package shard

import (
	"fmt"

	"vxml/internal/core"
	"vxml/internal/skeleton"
	"vxml/internal/vector"
	"vxml/internal/vectorize"
	"vxml/internal/xmlmodel"
)

// The merge stage: per-shard (S', V') results concatenate into one
// result exactly the way documents concatenate into a repository. The
// merged skeleton is the result root with every shard root's child edges
// spliced in shard order — rebuilt through a fresh Builder, so identical
// subtrees from different shards hash-cons together and adjacent
// identical edges across a shard boundary re-merge into one counted run
// (the same stepwise run-compression the engine applies). Data vectors
// concatenate per class path in the same shard-major order, which is
// federation document order, so positions line up with the merged
// skeleton's occurrence order by construction.

// MergeResults combines per-shard results (index-aligned with the
// federation's shards, all non-nil) into one Result. Stats are summed;
// the merged result is statically empty only when every shard's was.
// The merged Trace is nil — per-shard traces describe per-shard work and
// do not concatenate meaningfully. A shard whose result vectors cannot
// be read surfaces as a DegradedError naming that shard, the same typed
// failure the coordinator uses for every other per-shard fault.
//
//vx:hot the scatter-gather merge runs once per federated query
func MergeResults(results []*core.Result) (*core.Result, error) {
	if len(results) == 0 {
		return nil, fmt.Errorf("shard: merge: no shard results")
	}
	syms := xmlmodel.NewSymbols()
	b := skeleton.NewBuilder()
	out := vector.NewMemSet()
	merged := &core.Result{StaticallyEmpty: true}
	resultTag := xmlmodel.NoSym
	totalEdges := 0
	for _, r := range results {
		if r != nil && r.Repo != nil {
			totalEdges += len(r.Repo.Skel.Root.Edges)
		}
	}
	edges := make([]skeleton.Edge, 0, totalEdges)
	for k, r := range results {
		if r == nil {
			return nil, fmt.Errorf("shard: merge: shard %d has no result", k)
		}
		// Tag symbols are per-result interning orders, so subtrees import
		// by translating tag names into the merged symbol table.
		tag := syms.Intern(r.Repo.Syms.Name(r.Repo.Skel.Root.Tag))
		if resultTag == xmlmodel.NoSym {
			resultTag = tag
		} else if tag != resultTag {
			return nil, fmt.Errorf("shard: merge: shard %d result root <%s> differs from <%s>",
				k, syms.Name(tag), syms.Name(resultTag))
		}
		memo := make(map[*skeleton.Node]*skeleton.Node)
		for _, e := range r.Repo.Skel.Root.Edges {
			edges = append(edges, skeleton.Edge{
				Child: importTranslated(b, syms, r.Repo.Syms, e.Child, memo),
				Count: e.Count,
			})
		}
		for _, name := range r.Repo.Vectors.Names() {
			v, err := r.Repo.Vectors.Vector(name)
			if err != nil {
				return nil, &DegradedError{Shard: k, Err: fmt.Errorf("merge vector %s: %w", name, err)}
			}
			vals, err := vector.All(v)
			if err != nil {
				return nil, &DegradedError{Shard: k, Err: fmt.Errorf("merge vector %s: %w", name, err)}
			}
			mv := out.Add(name)
			for _, val := range vals {
				mv.Append(val)
			}
		}
		merged.Stats.VectorsOpened += r.Stats.VectorsOpened
		merged.Stats.ValuesScanned += r.Stats.ValuesScanned
		merged.Stats.RowsProduced += r.Stats.RowsProduced
		merged.Stats.Tuples += r.Stats.Tuples
		merged.Stats.RunsExpanded += r.Stats.RunsExpanded
		merged.Stats.IndexHits += r.Stats.IndexHits
		merged.Stats.MemoHits += r.Stats.MemoHits
		merged.StaticallyEmpty = merged.StaticallyEmpty && r.StaticallyEmpty
	}
	skel := b.Finish(b.Make(resultTag, edges))
	merged.Repo = &vectorize.MemRepository{
		Syms:    syms,
		Skel:    skel,
		Classes: skeleton.NewClasses(skel, syms),
		Vectors: out,
	}
	return merged, nil
}

// importTranslated rebuilds src's subtree in builder b, interning every
// tag name from srcSyms into dstSyms — Builder.Import with a symbol
// translation, for importing across repositories that interned tags in
// different orders. memo dedups shared subtrees within one shard result.
func importTranslated(b *skeleton.Builder, dstSyms, srcSyms *xmlmodel.Symbols, n *skeleton.Node, memo map[*skeleton.Node]*skeleton.Node) *skeleton.Node {
	if m, ok := memo[n]; ok {
		return m
	}
	var m *skeleton.Node
	if n.IsText {
		m = b.Text()
	} else {
		edges := make([]skeleton.Edge, 0, len(n.Edges))
		for _, e := range n.Edges {
			edges = append(edges, skeleton.Edge{
				Child: importTranslated(b, dstSyms, srcSyms, e.Child, memo),
				Count: e.Count,
			})
		}
		m = b.Make(dstSyms.Intern(srcSyms.Name(n.Tag)), edges)
	}
	memo[n] = m
	return m
}
