package shard

import (
	"vxml/internal/qgraph"
	"vxml/internal/xq"
)

// Scatter-gather is only correct for queries that decompose over
// documents: evaluating the query on each shard independently and
// concatenating the answers (in federation document order) must equal
// evaluating it once over the union of all documents. The fragment's
// one construct that spans documents is the *document root*: every
// shard has its own root element standing in for the union's single
// root, so any query that can observe the root's identity or
// multiplicity — return it, filter on it, join through it, or take two
// independent projections out of it (a root-level cartesian product) —
// would multiply or mis-filter under scatter. Everything else in the
// fragment is local to one bound occurrence, and every bound occurrence
// lives in exactly one shard.
//
// Shardable therefore admits a plan when:
//
//   - it binds the document exactly once (a second doc-rooted binding is
//     an implicit root-level join);
//   - and either that binding's targets provably exclude the root class
//     (its path has >= 2 steps, or a 1-step descendant axis that cannot
//     name the root), or the root-bound variable is *transparent*: never
//     the subject of a selection/existence test or a join side, never
//     returned as an element itself, and consumed by exactly one
//     downward path — either one plan projection (with the root absent
//     from the return expression) or, with no plan projection, a return
//     expression that is exactly one root-rooted path item. Those are
//     the shapes where per-shard root multiplicity cancels out: every
//     emitted value is anchored strictly below the root, once.
//
// Anything else falls back to the coordinator's union view, which is
// always correct (it evaluates the single-repository semantics over a
// merged skeleton) at the cost of no scatter parallelism.
func Shardable(plan *qgraph.Plan, rootTag string) (ok bool, reason string) {
	var bind *qgraph.Op
	for i := range plan.Ops {
		if plan.Ops[i].Kind != qgraph.OpBind {
			continue
		}
		if bind != nil {
			return false, "binds the document more than once"
		}
		bind = &plan.Ops[i]
	}
	if bind == nil {
		return false, "no document binding"
	}
	if len(bind.Path) == 0 {
		return false, "degenerate document binding"
	}
	if !bindsRoot(bind.Path, rootTag) {
		return true, ""
	}

	// The binding can target the root class. Collect the variables that
	// alias it (zero-step projections copy a column verbatim) and check
	// transparency.
	rootVars := map[string]bool{bind.Var: true}
	for changed := true; changed; {
		changed = false
		for _, op := range plan.Ops {
			if op.Kind == qgraph.OpProj && len(op.Path) == 0 && rootVars[op.Src] && !rootVars[op.Var] {
				rootVars[op.Var] = true
				changed = true
			}
		}
	}
	projections := 0
	for _, op := range plan.Ops {
		switch op.Kind {
		case qgraph.OpSel, qgraph.OpExists:
			if rootVars[op.Var] {
				// A per-shard filter on the root keeps or drops that shard's
				// whole contribution; the union filters once, globally.
				return false, "filters on the document root"
			}
		case qgraph.OpJoin:
			if rootVars[op.Var] || rootVars[op.RVar] {
				return false, "joins through the document root"
			}
		case qgraph.OpProj:
			if rootVars[op.Src] && !rootVars[op.Var] {
				projections++
			}
		}
	}

	// Return-expression references to the root. Return paths are emitted
	// per result row, so a root reference there is a projection out of
	// the root too — and one with an empty path returns the root element
	// itself (N copies under scatter for the union's one).
	returnRefs := 0
	rootItself := false
	var walk func(items []xq.RetItem)
	walk = func(items []xq.RetItem) {
		for _, it := range items {
			switch it := it.(type) {
			case xq.RetPath:
				if rootVars[it.Term.Var] {
					returnRefs++
					if len(it.Term.Path.Steps) == 0 {
						rootItself = true
					}
				}
			case xq.RetElem:
				walk(it.Kids)
			}
		}
	}
	walk(plan.Return)
	if rootItself {
		// N shards would return N root elements for the union's one.
		return false, "returns the document root"
	}

	if projections > 0 {
		if projections > 1 {
			// Two independent projections form a cartesian product at the
			// root: sum-of-products per shard != product-of-sums in union.
			return false, "multiple projections below the document root"
		}
		if returnRefs > 0 {
			// Result rows are multiplied by the projection; a per-row root
			// reference would then re-emit shard-local context per row where
			// the union emits global context.
			return false, "multiple projections below the document root"
		}
		return true, ""
	}

	// No plan projection: every row is the root itself, one row per shard
	// vs. one in the union. The per-row emission cancels that mismatch
	// only when the whole return expression is a single root-rooted path
	// (shard answers then concatenate in document order); any constructed
	// element or extra item would be duplicated once per shard.
	if returnRefs == 0 {
		return false, "no projection below the document root"
	}
	if len(plan.Return) != 1 || returnRefs != 1 {
		return false, "multiple projections below the document root"
	}
	if _, flat := plan.Return[0].(xq.RetPath); !flat {
		return false, "constructs an element around the document root"
	}
	return true, ""
}

// bindsRoot reports whether a doc-rooted binding path can resolve to the
// root class itself. It mirrors the engine's resolveFromDoc seeding: a
// 1-step child-axis path is root-or-nothing; a 1-step descendant-axis
// path seeds the root when its name matches the root tag or is a
// wildcard. Two or more steps always land strictly below the root.
func bindsRoot(path []xq.Step, rootTag string) bool {
	if len(path) != 1 {
		return false
	}
	s := path[0]
	if s.Axis == xq.Child {
		return true
	}
	return s.Name == rootTag || s.Name == "*"
}
