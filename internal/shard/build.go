package shard

import (
	"bytes"
	"fmt"
	"path/filepath"
	"strings"

	"vxml/internal/storage"
	"vxml/internal/vectorize"
	"vxml/internal/xmlmodel"
)

// BuildConfig configures a federation build.
type BuildConfig struct {
	// Shards is the shard count; at least 1.
	Shards int
	// Policy assigns documents to shards; empty means PolicyHash.
	Policy Policy
	// Opts configures each shard repository build (pool pages, compression,
	// filesystem).
	Opts vectorize.Options
}

// Build splits docs (whole XML documents sharing one root tag) across
// cfg.Shards shard repositories under dir and writes the SHARDS catalog.
// The build follows the repository commit protocol: everything lands in
// dir+".building" — each shard repository committed by its own build —
// and the finished federation is renamed into place as the last step, so
// a crash leaves either no federation or a complete one. dir must not
// already hold a federation.
//
// A shard the policy assigns no documents still gets a repository with a
// bare <roottag/> document, so every shard answers every query (with an
// empty contribution) rather than erroring on open.
//
//vx:fault-classified offline build API: failures abort the build and surface raw; retry/quarantine apply only at query time
func Build(docs []string, dir string, cfg BuildConfig) (*Catalog, error) {
	if cfg.Shards < 1 {
		return nil, fmt.Errorf("shard: build: %d shards (want >= 1)", cfg.Shards)
	}
	if len(docs) == 0 {
		return nil, fmt.Errorf("shard: build: no documents")
	}
	if cfg.Policy == "" {
		cfg.Policy = PolicyHash
	}

	// Validate every document up front: well-formed, one shared root tag.
	// RootChildren per document is what rebalance later cuts shards on.
	syms := xmlmodel.NewSymbols()
	rootTag := ""
	kids := make([]int, len(docs))
	for i, doc := range docs {
		root, err := xmlmodel.ParseString(doc, syms)
		if err != nil {
			return nil, fmt.Errorf("shard: build: document %d: %w", i, err)
		}
		tag := syms.Name(root.Tag)
		if rootTag == "" {
			rootTag = tag
		} else if tag != rootTag {
			return nil, fmt.Errorf("shard: build: document %d root <%s> differs from <%s>; a federation shares one root tag", i, tag, rootTag)
		}
		kids[i] = len(root.Kids)
	}
	byShard, err := assign(docs, cfg.Shards, cfg.Policy)
	if err != nil {
		return nil, err
	}

	fsys := storage.DefaultFS
	if cfg.Opts.FS != nil {
		fsys = cfg.Opts.FS
	}
	building := dir + ".building"
	if err := fsys.RemoveAll(building); err != nil {
		return nil, err
	}
	if err := fsys.MkdirAll(building, 0o755); err != nil {
		return nil, err
	}

	cat := &Catalog{Format: catalogFormat, RootTag: rootTag, Policy: cfg.Policy}
	for k, ids := range byShard {
		si := ShardInfo{Dir: fmt.Sprintf("shard-%04d", k)}
		shardDir := filepath.Join(building, si.Dir)
		first := fmt.Sprintf("<%s/>", rootTag)
		rest := ids
		if len(ids) > 0 {
			first = docs[ids[0]]
			rest = ids[1:]
		}
		repo, err := vectorize.Create(strings.NewReader(first), shardDir, cfg.Opts)
		if err != nil {
			return nil, fmt.Errorf("shard: build shard %d: %w", k, err)
		}
		for _, id := range rest {
			if err := repo.Append(bytes.NewReader([]byte(docs[id]))); err != nil {
				repo.Close()
				return nil, fmt.Errorf("shard: build shard %d: append document %d: %w", k, id, err)
			}
		}
		if err := repo.Close(); err != nil {
			return nil, fmt.Errorf("shard: build shard %d: %w", k, err)
		}
		for _, id := range ids {
			si.Docs = append(si.Docs, DocInfo{ID: id, RootChildren: kids[id]})
		}
		cat.Shards = append(cat.Shards, si)
	}
	if err := WriteCatalog(fsys, building, cat); err != nil {
		return nil, err
	}
	if err := vectorize.PromoteBuild(fsys, building, dir); err != nil {
		return nil, err
	}
	return cat, nil
}

// ExtractDocs reconstructs the federation's original documents, in
// global load order, by serializing each shard and cutting its root back
// into documents along the catalog's RootChildren boundaries. It is the
// inverse of Build and the first half of a rebalance.
//
//vx:fault-classified offline admin API: extraction failures abort the rebalance and surface raw to the operator
func ExtractDocs(f *Federation) ([]string, error) {
	docs := make([]string, f.Catalog.NumDocs())
	for k, repo := range f.Shards {
		var b strings.Builder
		if err := repo.WriteXML(&b); err != nil {
			return nil, fmt.Errorf("shard: extract shard %d: %w", k, err)
		}
		syms := xmlmodel.NewSymbols()
		root, err := xmlmodel.ParseString(b.String(), syms)
		if err != nil {
			return nil, fmt.Errorf("shard: extract shard %d: %w", k, err)
		}
		off := 0
		for _, di := range f.Catalog.Shards[k].Docs {
			if off+di.RootChildren > len(root.Kids) {
				return nil, fmt.Errorf("shard: extract shard %d: catalog claims %d more root children at offset %d, shard has %d: %w",
					k, di.RootChildren, off, len(root.Kids), storage.ErrCorrupt)
			}
			doc := xmlmodel.NewElem(root.Tag)
			for _, kid := range root.Kids[off : off+di.RootChildren] {
				doc.Append(kid)
			}
			docs[di.ID] = xmlmodel.TreeString(doc, syms)
			off += di.RootChildren
		}
		if off != len(root.Kids) {
			return nil, fmt.Errorf("shard: extract shard %d: %d root children not covered by the catalog: %w",
				k, len(root.Kids)-off, storage.ErrCorrupt)
		}
	}
	return docs, nil
}

// Rebalance re-splits an opened federation into a new federation at dir
// with a (possibly different) shard count and policy: documents are
// extracted in global order and re-loaded through Build. The source
// federation is untouched.
//
//vx:fault-classified offline admin API: rebalance failures abort and surface raw; the source federation keeps serving
func Rebalance(f *Federation, dir string, cfg BuildConfig) (*Catalog, error) {
	docs, err := ExtractDocs(f)
	if err != nil {
		return nil, err
	}
	return Build(docs, dir, cfg)
}
