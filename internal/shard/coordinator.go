package shard

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"time"

	"vxml/internal/core"
	"vxml/internal/obs"
	"vxml/internal/qgraph"
	"vxml/internal/storage"
	"vxml/internal/xq"
)

// Federation metrics, registered once at package scope.
var (
	obsQueries       = obs.GetCounter("shard.queries")
	obsScattered     = obs.GetCounter("shard.queries_scattered")
	obsUnionFallback = obs.GetCounter("shard.queries_union_fallback")
	obsShardQueries  = obs.GetCounter("shard.shard_queries")
	obsMerges        = obs.GetCounter("shard.merges")
	obsStaticEmpty   = obs.GetCounter("shard.static_empty")
	obsDegraded      = obs.GetCounter("shard.degraded")
	obsShardRetries  = obs.GetCounter("shard.shard_retries")
	obsResultHits    = obs.GetCounter("shard.result_cache_hits")
	obsResultMisses  = obs.GetCounter("shard.result_cache_misses")
)

// Span names for the federation layer, one package-level const per name
// (enforced by the vxlint obsnames analyzer).
const (
	spanQuery      = "shard.query"
	spanPlan       = "shard.plan"
	spanCacheProbe = "shard.cache_lookup"
	spanScatter    = "shard.scatter"
	spanShardQuery = "shard.shard_query"
	spanMerge      = "shard.merge"
	spanUnion      = "shard.union"
)

// evShardRetry is the span event recorded when the coordinator re-asks
// a shard after a transient failure.
const evShardRetry = "shard.retry"

// OutcomeClass is core.OutcomeClass extended with the federation's
// "degraded" class for partial-shard failures.
func OutcomeClass(err error) string {
	var de *DegradedError
	if errors.As(err, &de) {
		return "degraded"
	}
	return core.OutcomeClass(err)
}

// DegradedError is a partial-shard failure: the federation could not
// assemble a full answer because one shard failed. It wraps the shard's
// typed error (quarantine fence, storage fault, overload), so callers
// classify it with errors.Is exactly like a single-repository failure —
// a degraded response is always an error, never a partial merge served
// as a complete answer.
type DegradedError struct {
	// Shard is the failing shard's index.
	Shard int
	Err   error
}

func (e *DegradedError) Error() string {
	return fmt.Sprintf("shard: degraded: shard %d: %v", e.Shard, e.Err)
}

func (e *DegradedError) Unwrap() error { return e.Err }

// Config sizes a Coordinator. The cache and admission fields apply to
// each per-shard serving layer and to the union-view service; the
// coordinator additionally keeps its own plan cache and a merged-result
// cache of the same sizes, keyed by the federation epoch.
type Config struct {
	// Opts are the engine options per-shard evaluations run with.
	Opts core.Options
	// PlanCacheSize bounds each plan cache in entries; <= 0 disables.
	PlanCacheSize int
	// ResultCacheSize bounds each result cache in entries; <= 0 disables.
	ResultCacheSize int
	// MaxInflight caps concurrently evaluating queries per shard; <= 0 is
	// unlimited.
	MaxInflight int
	// MaxInflightPages is per-shard admission's faulted-pages budget.
	MaxInflightPages int64
	// AdmitWait is how long an over-budget shard query queues before it
	// is shed with core.ErrOverloaded.
	AdmitWait time.Duration
	// FanOut caps how many shards one query scatters to concurrently;
	// <= 0 means all at once.
	FanOut int
	// ShardRetries is how many times the coordinator re-asks a shard
	// whose answer was a transient read fault (on top of the buffer
	// pool's own per-read retries). 0 disables coordinator-level retry.
	ShardRetries int
}

// Coordinator answers queries over a federation through the same
// surface as core.Service: Plan and Query with (Result, Source, error).
// Decomposable queries scatter to every shard's serving layer
// concurrently and merge; the rest evaluate on the union view. All
// methods are safe for concurrent use.
type Coordinator struct {
	fed    *Federation
	cfg    Config
	shards []*core.Service

	plans   *lru[string, *coordPlan]
	results *lru[coordResultKey, *core.Result]

	unionMu    sync.Mutex
	union      *core.Service // guarded by unionMu
	unionEpoch uint64        // guarded by unionMu
}

type coordPlan struct {
	canon     string
	plan      *qgraph.Plan
	shardable bool
	reason    string // why not, when !shardable
}

type coordResultKey struct {
	canon string
	epoch uint64
}

// NewCoordinator builds the serving layer over an opened federation.
func NewCoordinator(f *Federation, cfg Config) *Coordinator {
	c := &Coordinator{fed: f, cfg: cfg}
	for _, repo := range f.Shards {
		c.shards = append(c.shards, core.NewService(repo, core.ServiceConfig{
			Opts:             cfg.Opts,
			PlanCacheSize:    cfg.PlanCacheSize,
			ResultCacheSize:  cfg.ResultCacheSize,
			MaxInflight:      cfg.MaxInflight,
			MaxInflightPages: cfg.MaxInflightPages,
			AdmitWait:        cfg.AdmitWait,
		}))
	}
	if cfg.PlanCacheSize > 0 {
		c.plans = newLRUCache[string, *coordPlan](cfg.PlanCacheSize)
	}
	if cfg.ResultCacheSize > 0 {
		c.results = newLRUCache[coordResultKey, *core.Result](cfg.ResultCacheSize)
	}
	return c
}

// Federation returns the coordinator's federation.
func (c *Coordinator) Federation() *Federation { return c.fed }

// Plan parses and plans the query through the coordinator's plan cache.
func (c *Coordinator) Plan(query string) (*qgraph.Plan, error) {
	cp, err := c.planFor(query)
	if err != nil {
		return nil, err
	}
	return cp.plan, nil
}

// Canonical returns the query's canonical text through the plan cache.
func (c *Coordinator) Canonical(query string) (string, error) {
	cp, err := c.planFor(query)
	if err != nil {
		return "", err
	}
	return cp.canon, nil
}

// Shardable reports whether the query scatters (true) or falls back to
// the union view, with the classifier's reason when it does not.
func (c *Coordinator) Shardable(query string) (bool, string, error) {
	cp, err := c.planFor(query)
	if err != nil {
		return false, "", err
	}
	return cp.shardable, cp.reason, nil
}

// planFor resolves query text to a cached plan plus its shardability
// verdict, double-keyed by trimmed raw text and canonical form like the
// core plan cache.
func (c *Coordinator) planFor(query string) (*coordPlan, error) {
	trimmed := strings.TrimSpace(query)
	if c.plans != nil {
		if cp, ok := c.plans.get(trimmed); ok {
			return cp, nil
		}
	}
	parsed, err := xq.Parse(query)
	if err != nil {
		return nil, err
	}
	canon := parsed.Canonical()
	if c.plans != nil {
		if cp, ok := c.plans.get(canon); ok {
			c.plans.put(trimmed, cp)
			return cp, nil
		}
	}
	plan, err := qgraph.Build(parsed)
	if err != nil {
		return nil, err
	}
	ok, reason := Shardable(plan, c.fed.Catalog.RootTag)
	cp := &coordPlan{canon: canon, plan: plan, shardable: ok, reason: reason}
	if c.plans != nil {
		c.plans.put(canon, cp)
		if trimmed != canon {
			c.plans.put(trimmed, cp)
		}
	}
	return cp, nil
}

// Query answers one query over the federation. The merged-result cache
// is keyed (canonical query, federation epoch), so an Append on any
// shard structurally invalidates it; the epoch is captured before any
// shard work, so a result computed while an Append commits lands under
// the pre-append key.
func (c *Coordinator) Query(ctx context.Context, query string) (*core.Result, core.Source, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	// Root-or-child like core.Service: under the HTTP surface shard.query
	// nests in the request span; called directly with tracing on, the
	// coordinator roots the trace and owns its ring offer.
	ctx, sp, owned := obs.StartRequestSpan(ctx, spanQuery)
	res, src, err := c.queryTraced(ctx, query)
	if sp != nil {
		outcome := OutcomeClass(err)
		sp.SetAttr(obs.Str("source", src.String()), obs.Str("outcome", outcome))
		obs.FinishRequestSpan(sp, owned, strings.Join(strings.Fields(query), " "), outcome)
	}
	return res, src, err
}

func (c *Coordinator) queryTraced(ctx context.Context, query string) (*core.Result, core.Source, error) {
	obsQueries.Inc()
	_, psp := obs.StartSpan(ctx, spanPlan)
	cp, err := c.planFor(query)
	psp.End()
	if err != nil {
		return nil, core.SourceEval, err
	}
	key := coordResultKey{canon: cp.canon, epoch: c.fed.Epoch()}
	_, csp := obs.StartSpan(ctx, spanCacheProbe)
	if c.results != nil {
		if r, ok := c.results.get(key); ok {
			obsResultHits.Inc()
			obs.MeterFrom(ctx).CacheHit()
			csp.SetAttr(obs.Bool("hit", true))
			csp.End()
			return r, core.SourceResultCache, nil
		}
		obsResultMisses.Inc()
	}
	csp.SetAttr(obs.Bool("hit", false))
	csp.End()
	var (
		res *core.Result
		src core.Source
	)
	if cp.shardable {
		res, src, err = c.scatter(ctx, query)
	} else {
		res, src, err = c.unionQuery(ctx, query)
	}
	if err != nil {
		return nil, src, err
	}
	res.Epoch = key.epoch
	if res.StaticallyEmpty {
		obsStaticEmpty.Inc()
	}
	if c.results != nil {
		c.results.put(key, res)
	}
	return res, src, nil
}

// scatter fans the query out to every shard's serving layer (bounded by
// FanOut), retries transient shard failures, folds per-shard meters
// into the request meter, and merges. Any unrecoverable shard failure
// cancels the remaining shards and surfaces as a DegradedError.
func (c *Coordinator) scatter(ctx context.Context, query string) (*core.Result, core.Source, error) {
	obsScattered.Inc()
	start := time.Now()
	fanCtx, fsp := obs.StartSpan(ctx, spanScatter)
	sctx, cancel := context.WithCancel(fanCtx)
	defer cancel()
	n := len(c.shards)
	fan := c.cfg.FanOut
	if fan <= 0 || fan > n {
		fan = n
	}
	qtext := obs.QueryTextFrom(ctx)
	if qtext == "" {
		qtext = strings.Join(strings.Fields(query), " ")
	}
	var (
		wg       sync.WaitGroup
		sem      = make(chan struct{}, fan)
		results  = make([]*core.Result, n)
		sources  = make([]core.Source, n)
		errs     = make([]error, n)
		meters   = make([]*obs.TaskMeter, n)
		attempts = make([]int64, n) // coordinator-level retries per shard
	)
	for k := range c.shards {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			if err := sctx.Err(); err != nil {
				errs[k] = err
				return
			}
			m := &obs.TaskMeter{}
			meters[k] = m
			sqctx, ssp := obs.StartSpan(sctx, spanShardQuery)
			ssp.SetAttr(obs.Int("shard", int64(k)))
			defer ssp.End()
			qctx := obs.WithMeter(obs.WithQueryText(sqctx, fmt.Sprintf("[shard %d] %s", k, qtext)), m)
			for attempt := 0; ; attempt++ {
				res, src, err := c.shards[k].Query(qctx, query)
				if err == nil {
					results[k], sources[k] = res, src
					return
				}
				if attempt >= c.cfg.ShardRetries || !storage.IsTransientRead(err) || sctx.Err() != nil {
					errs[k] = err
					cancel()
					return
				}
				obsShardRetries.Inc()
				m.ShardRetry()
				attempts[k]++
				ssp.Event(evShardRetry, obs.Int("shard", int64(k)), obs.Int("attempt", int64(attempt+1)), obs.Str("error", err.Error()))
			}
		}(k)
	}
	wg.Wait()
	fsp.End()
	obsShardQueries.Add(int64(n))
	parent := obs.MeterFrom(ctx)
	for _, m := range meters {
		if m != nil {
			parent.Add(m.Counters())
		}
	}
	if err := pickShardError(ctx, errs); err != nil {
		c.captureSlow(ctx, qtext, start, meters, errs, attempts, err)
		return nil, core.SourceEval, err
	}
	_, msp := obs.StartSpan(ctx, spanMerge)
	merged, err := MergeResults(results)
	msp.End()
	if err != nil {
		return nil, core.SourceEval, err
	}
	obsMerges.Inc()
	c.captureSlow(ctx, qtext, start, meters, errs, attempts, nil)
	// The answer is "cached" only if every shard's was; the merge itself
	// is recomputed, but no shard did storage work.
	src := core.SourceResultCache
	for _, s := range sources {
		if !s.Cached() {
			src = core.SourceEval
			break
		}
	}
	return merged, src, nil
}

// captureSlow records a coordinator-level slow-ring entry with per-shard
// attribution: which shard did which work, which shard failed, and how
// many coordinator-level retries each one cost. Degraded queries are
// always captured (they are exactly what an operator inspects the ring
// for); healthy queries are captured under the ring's usual wall/pages
// thresholds.
func (c *Coordinator) captureSlow(ctx context.Context, qtext string, start time.Time, meters []*obs.TaskMeter, errs []error, attempts []int64, err error) {
	wall := time.Since(start)
	var total obs.TaskCounters
	agg := &obs.TaskMeter{}
	for _, m := range meters {
		if m != nil {
			agg.Add(m.Counters())
		}
	}
	total = agg.Counters()
	var de *DegradedError
	degraded := errors.As(err, &de)
	if !degraded && !obs.SlowQueries.ShouldCapture(wall, total.PagesFaulted) {
		return
	}
	rec := obs.SlowQueryRecord{
		Query:    qtext,
		Start:    start,
		WallUS:   wall.Microseconds(),
		Counters: total,
		TraceID:  obs.SpanFrom(ctx).TraceID(),
	}
	if err != nil {
		rec.Error = err.Error()
	}
	for k := range meters {
		ss := obs.SlowShard{Shard: k, Counters: meters[k].Counters(), Retries: attempts[k]}
		if errs[k] != nil {
			ss.Error = errs[k].Error()
		}
		rec.ShardRetries += attempts[k]
		rec.Shards = append(rec.Shards, ss)
	}
	obs.SlowQueries.Record(rec)
}

// pickShardError reduces per-shard outcomes to the request's error: nil
// when every shard answered; the caller's own context error when the
// request died; otherwise the first shard's real failure wrapped as a
// DegradedError (cancellation echoes from the shards the coordinator
// itself cancelled are skipped in favor of the failure that caused
// them).
func pickShardError(ctx context.Context, errs []error) error {
	failed := -1
	for k, err := range errs {
		if err == nil || errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			continue
		}
		failed = k
		break
	}
	if failed < 0 {
		if err := ctx.Err(); err != nil {
			return err
		}
		for k, err := range errs {
			if err != nil {
				failed = k
				break
			}
		}
		if failed < 0 {
			return nil
		}
	}
	obsDegraded.Inc()
	return &DegradedError{Shard: failed, Err: errs[failed]}
}

// unionQuery evaluates a non-decomposable query on the union view. The
// union engine runs over MemRepository plumbing with no per-shard
// quarantine table, so the coordinator fences degraded shards up front:
// any quarantined vector anywhere fails the query fast with a typed
// degraded response instead of re-reading known-bad pages.
func (c *Coordinator) unionQuery(ctx context.Context, query string) (*core.Result, core.Source, error) {
	obsUnionFallback.Inc()
	uctx, usp := obs.StartSpan(ctx, spanUnion)
	defer usp.End()
	for k, repo := range c.fed.Shards {
		if q := repo.Health.List(); len(q) > 0 {
			obsDegraded.Inc()
			derr := &DegradedError{
				Shard: k,
				Err:   &core.QuarantinedError{Vector: q[0].Vector, Reason: q[0].Reason},
			}
			// Fence refusals get the same shard attribution in the slow
			// ring as a scatter-path degradation.
			obs.SlowQueries.Record(obs.SlowQueryRecord{
				Query:   strings.Join(strings.Fields(query), " "),
				Start:   time.Now(),
				Error:   derr.Error(),
				TraceID: obs.SpanFrom(ctx).TraceID(),
				Shards:  []obs.SlowShard{{Shard: k, Error: derr.Err.Error()}},
			})
			return nil, core.SourceEval, derr
		}
	}
	svc, err := c.unionService()
	if err != nil {
		return nil, core.SourceEval, err
	}
	return svc.Query(uctx, query)
}

// unionService returns the union-view serving layer, rebuilding it when
// any shard has appended since it was built. The view holds merged
// skeleton structure only — vector data stays in the shards and is read
// lazily — so a rebuild costs one skeleton walk per shard.
func (c *Coordinator) unionService() (*core.Service, error) {
	epoch := c.fed.Epoch()
	c.unionMu.Lock()
	defer c.unionMu.Unlock()
	if c.union == nil || c.unionEpoch != epoch {
		c.union = newUnionService(c.fed, c.cfg)
		c.unionEpoch = epoch
	}
	return c.union, nil
}

// Check runs the static checker against every shard's path catalog and
// rolls the verdicts up: an edge is empty for the federation only when
// it is empty in every shard (edge resolution distributes over the
// union), classes sum, and path samples union up to the same cap the
// single-shard checker uses.
func (c *Coordinator) Check(plan *qgraph.Plan) *core.StaticCheck {
	checks := make([]*core.StaticCheck, len(c.fed.Shards))
	for k, repo := range c.fed.Shards {
		checks[k] = core.NewRepoEngine(repo, c.cfg.Opts).CheckPlan(plan)
	}
	out := &core.StaticCheck{}
	const maxPaths = 8
	for i := range checks[0].Edges {
		ec := core.EdgeCheck{Edge: checks[0].Edges[i].Edge, Empty: true}
		seen := make(map[string]bool)
		for _, sc := range checks {
			e := sc.Edges[i]
			ec.Classes += e.Classes
			if !e.Empty {
				ec.Empty = false
			}
			for _, p := range e.Paths {
				if !seen[p] && len(ec.Paths) < maxPaths {
					seen[p] = true
					ec.Paths = append(ec.Paths, p)
				}
			}
		}
		if ec.Empty && !out.Empty {
			out.Empty = true
			out.Reason = fmt.Sprintf("edge %d matches no catalog path in any shard", i)
		}
		out.Edges = append(out.Edges, ec)
	}
	return out
}
