package shard

import (
	"container/list"
	"sync"
)

// lru is a small mutex-guarded LRU for the coordinator's plan and merged
// result caches. Coordinator cache traffic is a hash lookup per request
// — far from the per-scan hot paths that justified core's lock-free
// CLOCK cache — so the simple implementation wins on clarity.
type lru[K comparable, V any] struct {
	mu    sync.Mutex
	cap   int
	order *list.List          // guarded by mu; front = most recent
	items map[K]*list.Element // guarded by mu
}

type lruEntry[K comparable, V any] struct {
	key K
	val V
}

func newLRUCache[K comparable, V any](capacity int) *lru[K, V] {
	return &lru[K, V]{cap: capacity, order: list.New(), items: make(map[K]*list.Element)}
}

func (c *lru[K, V]) get(k K) (V, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[k]; ok {
		c.order.MoveToFront(el)
		return el.Value.(*lruEntry[K, V]).val, true
	}
	var zero V
	return zero, false
}

func (c *lru[K, V]) put(k K, v V) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[k]; ok {
		el.Value.(*lruEntry[K, V]).val = v
		c.order.MoveToFront(el)
		return
	}
	c.items[k] = c.order.PushFront(&lruEntry[K, V]{key: k, val: v})
	for len(c.items) > c.cap {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.items, oldest.Value.(*lruEntry[K, V]).key)
	}
}
