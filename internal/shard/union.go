package shard

import (
	"context"
	"sort"

	"vxml/internal/core"
	"vxml/internal/obs"
	"vxml/internal/skeleton"
	"vxml/internal/vector"
	"vxml/internal/vectorize"
	"vxml/internal/xmlmodel"
)

// The union view: a MemRepository presenting the whole federation as the
// single repository that loading every document into one store would
// have produced. The skeleton is the federation root with every shard
// root's child edges spliced in shard-major order (rebuilt through one
// Builder, so identical subtrees share and runs re-merge across shard
// boundaries); the data vectors are lazy concatenations of the shard
// vectors in the same order, reading shard pages only when scanned.
// Queries the shardability classifier rejects evaluate here with plain
// single-repository semantics — always correct, never scattered.

// buildUnionView merges the federation's shards into one MemRepository.
func buildUnionView(f *Federation) *vectorize.MemRepository {
	syms := xmlmodel.NewSymbols()
	b := skeleton.NewBuilder()
	var edges []skeleton.Edge
	sets := make([]vector.Set, len(f.Shards))
	for k, repo := range f.Shards {
		memo := make(map[*skeleton.Node]*skeleton.Node)
		for _, e := range repo.Skel.Root.Edges {
			edges = append(edges, skeleton.Edge{
				Child: importTranslated(b, syms, repo.Syms, e.Child, memo),
				Count: e.Count,
			})
		}
		sets[k] = repo.Vectors
	}
	skel := b.Finish(b.Make(syms.Intern(f.Catalog.RootTag), edges))
	return &vectorize.MemRepository{
		Syms:    syms,
		Skel:    skel,
		Classes: skeleton.NewClasses(skel, syms),
		Vectors: newConcatSet(sets),
	}
}

// concatSet presents per-shard vector sets as one set: each name's
// vector is the concatenation, in shard order, of that name's vector in
// every shard that has it (a class absent from a shard contributes
// nothing, matching its zero occurrences there).
type concatSet struct {
	parts []vector.Set
	names []string          // sorted union
	has   []map[string]bool // per part
}

func newConcatSet(parts []vector.Set) *concatSet {
	s := &concatSet{parts: parts, has: make([]map[string]bool, len(parts))}
	union := make(map[string]bool)
	for k, p := range parts {
		s.has[k] = make(map[string]bool)
		for _, name := range p.Names() {
			s.has[k][name] = true
			union[name] = true
		}
	}
	for name := range union {
		s.names = append(s.names, name)
	}
	sort.Strings(s.names)
	return s
}

func (s *concatSet) Names() []string { return s.names }

// Vector concatenates the shards' vectors for one class. A shard whose
// vector cannot be opened (quarantined page, corrupt catalog) fails the
// union read as a DegradedError naming that shard — the same typed
// failure the coordinator's scatter path produces.
func (s *concatSet) Vector(name string) (vector.Vector, error) {
	return s.VectorCtx(context.Background(), nil, name)
}

// VectorCtx implements vector.CtxSet by forwarding the request attribution
// to every shard set the union open touches.
func (s *concatSet) VectorCtx(ctx context.Context, m *obs.TaskMeter, name string) (vector.Vector, error) {
	parts := make([]vector.Vector, 0, len(s.parts))
	for k, p := range s.parts {
		if !s.has[k][name] {
			continue
		}
		v, err := vector.OpenFrom(ctx, m, p, name)
		if err != nil {
			return nil, &DegradedError{Shard: k, Err: err}
		}
		parts = append(parts, v)
	}
	return newConcatVector(parts), nil
}

// concatVector concatenates vectors positionally: part i's positions
// shift up by the combined length of parts 0..i-1.
type concatVector struct {
	parts []vector.Vector
	offs  []int64 // offs[i] = global position of part i's first value
	total int64
}

func newConcatVector(parts []vector.Vector) *concatVector {
	c := &concatVector{parts: parts, offs: make([]int64, len(parts))}
	for i, p := range parts {
		c.offs[i] = c.total
		c.total += p.Len()
	}
	return c
}

func (c *concatVector) Len() int64 { return c.total }

func (c *concatVector) Scan(start, n int64, fn func(pos int64, val []byte) error) error {
	if n <= 0 {
		return nil
	}
	end := start + n
	for i, p := range c.parts {
		plo, phi := c.offs[i], c.offs[i]+p.Len()
		if phi <= start {
			continue
		}
		if plo >= end {
			break
		}
		lo := start
		if plo > lo {
			lo = plo
		}
		hi := end
		if phi < hi {
			hi = phi
		}
		off := c.offs[i]
		//vx:alloc one closure per shard part spanned, not per value scanned
		if err := p.Scan(lo-off, hi-lo, func(pos int64, val []byte) error {
			return fn(off+pos, val)
		}); err != nil {
			return err
		}
	}
	return nil
}

// Metered forwards per-query attribution to every disk-backed part.
func (c *concatVector) Metered(m *obs.TaskMeter) vector.Vector {
	parts := make([]vector.Vector, len(c.parts))
	for i, p := range c.parts {
		if mp, ok := p.(vector.Meterable); ok {
			parts[i] = mp.Metered(m)
		} else {
			parts[i] = p
		}
	}
	return &concatVector{parts: parts, offs: c.offs, total: c.total}
}

// WithContext forwards cancellation to every disk-backed part.
func (c *concatVector) WithContext(ctx context.Context) vector.Vector {
	parts := make([]vector.Vector, len(c.parts))
	for i, p := range c.parts {
		if cp, ok := p.(vector.Contextual); ok {
			parts[i] = cp.WithContext(ctx)
		} else {
			parts[i] = p
		}
	}
	return &concatVector{parts: parts, offs: c.offs, total: c.total}
}

// newUnionService wraps the union view in a serving layer sized like the
// coordinator's per-shard services.
func newUnionService(f *Federation, cfg Config) *core.Service {
	return core.NewMemService(buildUnionView(f), core.ServiceConfig{
		Opts:             cfg.Opts,
		PlanCacheSize:    cfg.PlanCacheSize,
		ResultCacheSize:  cfg.ResultCacheSize,
		MaxInflight:      cfg.MaxInflight,
		MaxInflightPages: cfg.MaxInflightPages,
		AdmitWait:        cfg.AdmitWait,
	})
}
