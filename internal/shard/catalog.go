// Package shard federates several vectorized repositories behind the
// single-repository query surface. A federation directory holds N shard
// repositories plus a SHARDS catalog mapping every loaded document to
// its shard; the Coordinator answers queries over the federation either
// by scattering the query to every shard and merging the per-shard
// (S', V') results (when the query is provably document-decomposable,
// see Shardable) or by evaluating it over a merged union view of all
// shards. Both paths return exactly what a single repository built from
// the union of the documents would return.
package shard

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"

	"vxml/internal/storage"
	"vxml/internal/vectorize"
)

// CatalogName is the catalog's file name within a federation directory.
const CatalogName = "SHARDS"

// catalogFormat is the federation catalog format version.
const catalogFormat = 1

// Policy names a document-to-shard assignment strategy.
type Policy string

const (
	// PolicyHash assigns each document by a content hash — deterministic,
	// load-oblivious, and naturally uneven for small document counts.
	PolicyHash Policy = "hash"
	// PolicyRange assigns contiguous blocks of the load order to each
	// shard, preserving document locality.
	PolicyRange Policy = "range"
)

// DocInfo records one loaded document's place in the federation.
type DocInfo struct {
	// ID is the document's global position in load order. Federation
	// document order — the order the union view and merged results
	// present documents in — is shard-major: all of shard 0's documents
	// (ascending ID), then shard 1's, and so on.
	ID int `json:"id"`
	// RootChildren is how many children the document root contributed to
	// its shard's root. Shard repositories splice document roots together
	// (vectorize.Append), so this is what lets rebalance cut the shard
	// back into its original documents.
	RootChildren int `json:"root_children"`
}

// ShardInfo describes one shard of a federation.
type ShardInfo struct {
	// Dir is the shard repository's directory name under the federation
	// directory.
	Dir string `json:"dir"`
	// Docs lists the shard's documents in ascending global ID — the order
	// they were appended to the shard repository.
	Docs []DocInfo `json:"docs"`
}

// Catalog is the federation's self-description, persisted as SHARDS with
// a checksum footer and rewritten atomically like every other repository
// metadata file.
type Catalog struct {
	Format  int         `json:"format"`
	RootTag string      `json:"root_tag"`
	Policy  Policy      `json:"policy"`
	Shards  []ShardInfo `json:"shards"`
}

// NumDocs returns the total document count across all shards.
func (c *Catalog) NumDocs() int {
	n := 0
	for _, s := range c.Shards {
		n += len(s.Docs)
	}
	return n
}

// WriteCatalog atomically writes the catalog into dir.
//
//vx:fault-classified build-time write path: a failed catalog write fails the build; no query-time taxonomy applies
func WriteCatalog(fsys storage.FS, dir string, c *Catalog) error {
	data, err := json.MarshalIndent(c, "", " ")
	if err != nil {
		return err
	}
	if err := storage.WriteFileAtomic(fsys, filepath.Join(dir, CatalogName), data); err != nil {
		return fmt.Errorf("shard: write catalog: %w", err)
	}
	return nil
}

// ReadCatalog reads and validates dir's catalog.
//
//vx:fault-classified open-time API: a corrupt catalog is already branded ErrCorrupt here and fails the open; nothing to retry
func ReadCatalog(fsys storage.FS, dir string) (*Catalog, error) {
	body, err := storage.ReadFileChecksummed(fsys, filepath.Join(dir, CatalogName))
	if os.IsNotExist(err) {
		return nil, fmt.Errorf("shard: %s has no %s: not a federation directory", dir, CatalogName)
	}
	if err != nil {
		return nil, err
	}
	var c Catalog
	if err := json.Unmarshal(body, &c); err != nil {
		return nil, fmt.Errorf("shard: parse %s: %v: %w", CatalogName, err, storage.ErrCorrupt)
	}
	if c.Format != catalogFormat {
		return nil, fmt.Errorf("shard: %s: unsupported federation format %d (this build reads format %d)", dir, c.Format, catalogFormat)
	}
	if len(c.Shards) == 0 {
		return nil, fmt.Errorf("shard: %s: catalog lists no shards: %w", dir, storage.ErrCorrupt)
	}
	return &c, nil
}

// assign maps every document to a shard under the policy. Documents are
// identified by their load-order index; hash assignment reads the
// document bytes.
func assign(docs []string, shards int, policy Policy) ([][]int, error) {
	out := make([][]int, shards)
	switch policy {
	case PolicyHash:
		for i, doc := range docs {
			h := fnv.New32a()
			h.Write([]byte(doc))
			k := int(h.Sum32() % uint32(shards))
			out[k] = append(out[k], i)
		}
	case PolicyRange:
		// Contiguous blocks of ceil(len/shards); trailing shards may be
		// empty when documents are scarce.
		per := (len(docs) + shards - 1) / shards
		if per == 0 {
			per = 1
		}
		for i := range docs {
			k := i / per
			if k >= shards {
				k = shards - 1
			}
			out[k] = append(out[k], i)
		}
	default:
		return nil, fmt.Errorf("shard: unknown policy %q (want %q or %q)", policy, PolicyHash, PolicyRange)
	}
	return out, nil
}

// Federation is an opened set of shard repositories plus their catalog.
// Fields are exported so tests can assemble federations with per-shard
// filesystems (fault injection on a subset of shards).
type Federation struct {
	Dir     string
	Catalog *Catalog
	// Shards is index-aligned with Catalog.Shards.
	Shards []*vectorize.Repository
}

// OpenFederation opens every shard of the federation at dir. opts (pool
// size, FS) applies to each shard repository.
//
//vx:fault-classified open-time API: a shard that fails to open fails the whole open, before any query could be degraded
func OpenFederation(dir string, opts vectorize.Options) (*Federation, error) {
	fsys := storage.DefaultFS
	if opts.FS != nil {
		fsys = opts.FS
	}
	cat, err := ReadCatalog(fsys, dir)
	if err != nil {
		return nil, err
	}
	f := &Federation{Dir: dir, Catalog: cat}
	for _, si := range cat.Shards {
		repo, err := vectorize.Open(filepath.Join(dir, si.Dir), opts)
		if err != nil {
			f.Close()
			return nil, fmt.Errorf("shard: open %s: %w", si.Dir, err)
		}
		f.Shards = append(f.Shards, repo)
	}
	return f, nil
}

// Close closes every shard repository, returning the first error.
//
//vx:fault-classified shutdown path: close errors are reported, not retried; the taxonomy governs query-time reads
func (f *Federation) Close() error {
	var first error
	for _, repo := range f.Shards {
		if err := repo.Close(); err != nil && first == nil {
			first = err
		}
	}
	f.Shards = nil
	return first
}

// Epoch is the federation's append epoch: the sum of the shard epochs,
// so any committed Append on any shard changes it. Result caches over
// the federation key on it exactly like single-repository caches key on
// Repository.Epoch.
func (f *Federation) Epoch() uint64 {
	var e uint64
	for _, repo := range f.Shards {
		e += repo.Epoch()
	}
	return e
}

// ShardStatus is one shard's row in the operator-facing status listing
// (vxstore shard list, GET /debug/shards).
type ShardStatus struct {
	Shard       int                       `json:"shard"`
	Dir         string                    `json:"dir"`
	Docs        int                       `json:"docs"`
	Epoch       uint64                    `json:"epoch"`
	Classes     int                       `json:"classes"`
	Vectors     int                       `json:"vectors"`
	Quarantined []storage.QuarantineEntry `json:"quarantined,omitempty"`
}

// Status reports every shard's live state.
func (f *Federation) Status() []ShardStatus {
	out := make([]ShardStatus, len(f.Shards))
	for k, repo := range f.Shards {
		out[k] = ShardStatus{
			Shard:       k,
			Dir:         f.Catalog.Shards[k].Dir,
			Docs:        len(f.Catalog.Shards[k].Docs),
			Epoch:       repo.Epoch(),
			Classes:     repo.Classes.NumClasses(),
			Vectors:     len(repo.Vectors.Names()),
			Quarantined: repo.Health.List(),
		}
	}
	return out
}
