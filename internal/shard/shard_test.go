package shard

import (
	"context"
	"errors"
	"strings"
	"testing"

	"vxml/internal/core"
	"vxml/internal/obs"
	"vxml/internal/qgraph"
	"vxml/internal/storage"
	"vxml/internal/vector"
	"vxml/internal/vectorize"
	"vxml/internal/xmlmodel"
	"vxml/internal/xq"
)

// buildFed builds a federation from docs on a fresh MemFS and opens a
// coordinator over it.
func buildFed(t *testing.T, docs []string, shards int, policy Policy) (*Federation, *Coordinator) {
	t.Helper()
	mem := storage.NewMemFS()
	opts := vectorize.Options{PoolPages: 16, FS: mem}
	if _, err := Build(docs, "fed", BuildConfig{Shards: shards, Policy: policy, Opts: opts}); err != nil {
		t.Fatalf("build federation: %v", err)
	}
	f, err := OpenFederation("fed", opts)
	if err != nil {
		t.Fatalf("open federation: %v", err)
	}
	t.Cleanup(func() { f.Close() })
	return f, NewCoordinator(f, Config{PlanCacheSize: 32, ResultCacheSize: 32})
}

// unionAnswer evaluates the query over a single in-memory repository
// holding the union of the federation's documents in federation
// (shard-major) document order — the baseline every coordinator answer
// must reproduce.
func unionAnswer(t *testing.T, f *Federation, docs []string, query string) string {
	t.Helper()
	syms := xmlmodel.NewSymbols()
	var root *xmlmodel.Node
	for _, si := range f.Catalog.Shards {
		for _, di := range si.Docs {
			doc, err := xmlmodel.ParseString(docs[di.ID], syms)
			if err != nil {
				t.Fatal(err)
			}
			if root == nil {
				root = xmlmodel.NewElem(doc.Tag)
			}
			for _, kid := range doc.Kids {
				root.Append(kid)
			}
		}
	}
	mem, err := vectorize.FromTree(root, syms)
	if err != nil {
		t.Fatal(err)
	}
	res, _, err := core.NewMemService(mem, core.ServiceConfig{}).Query(context.Background(), query)
	if err != nil {
		t.Fatalf("union baseline %q: %v", query, err)
	}
	xml, err := res.XML()
	if err != nil {
		t.Fatal(err)
	}
	return xml
}

func coordAnswer(t *testing.T, c *Coordinator, query string) (string, *core.Result, core.Source) {
	t.Helper()
	res, src, err := c.Query(context.Background(), query)
	if err != nil {
		t.Fatalf("coordinator %q: %v", query, err)
	}
	xml, err := res.XML()
	if err != nil {
		t.Fatal(err)
	}
	return xml, res, src
}

func TestBuildCatalogRoundTrip(t *testing.T) {
	docs := []string{
		"<lib><b><t>one</t></b></lib>",
		"<lib><b><t>two</t></b><b><t>three</t></b></lib>",
		"<lib><c>x</c></lib>",
		"<lib><b><t>four</t></b><c>y</c><c>z</c></lib>",
		"<lib/>",
	}
	f, _ := buildFed(t, docs, 3, PolicyHash)
	cat := f.Catalog
	if cat.RootTag != "lib" || cat.Policy != PolicyHash || len(cat.Shards) != 3 {
		t.Fatalf("catalog = %+v", cat)
	}
	seen := make(map[int]bool)
	for _, si := range cat.Shards {
		prev := -1
		for _, di := range si.Docs {
			if seen[di.ID] {
				t.Errorf("document %d assigned twice", di.ID)
			}
			seen[di.ID] = true
			if di.ID <= prev {
				t.Errorf("shard %s document order not ascending: %d after %d", si.Dir, di.ID, prev)
			}
			prev = di.ID
		}
	}
	if len(seen) != len(docs) {
		t.Errorf("%d of %d documents assigned", len(seen), len(docs))
	}
	st := f.Status()
	if len(st) != 3 {
		t.Fatalf("status rows = %d", len(st))
	}
	for k, row := range st {
		if row.Shard != k || row.Docs != len(cat.Shards[k].Docs) {
			t.Errorf("status[%d] = %+v", k, row)
		}
	}

	// Extraction inverts the split: every document comes back, in global
	// order, structurally identical to what went in.
	out, err := ExtractDocs(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(docs) {
		t.Fatalf("extracted %d documents, want %d", len(out), len(docs))
	}
	syms := xmlmodel.NewSymbols()
	for i := range docs {
		want, err := xmlmodel.ParseString(docs[i], syms)
		if err != nil {
			t.Fatal(err)
		}
		got, err := xmlmodel.ParseString(out[i], syms)
		if err != nil {
			t.Fatalf("extracted document %d: %v", i, err)
		}
		if !want.Equal(got) {
			t.Errorf("document %d round-trip mismatch:\n in: %s\nout: %s", i, docs[i], out[i])
		}
	}
}

func TestBuildRejects(t *testing.T) {
	mem := storage.NewMemFS()
	opts := vectorize.Options{PoolPages: 8, FS: mem}
	if _, err := Build([]string{"<a/>", "<b/>"}, "f1", BuildConfig{Shards: 2, Opts: opts}); err == nil {
		t.Error("mixed root tags accepted")
	}
	if _, err := Build([]string{"<a/>"}, "f2", BuildConfig{Shards: 0, Opts: opts}); err == nil {
		t.Error("zero shards accepted")
	}
	if _, err := Build(nil, "f3", BuildConfig{Shards: 1, Opts: opts}); err == nil {
		t.Error("empty document set accepted")
	}
	if _, err := Build([]string{"<a/>"}, "f4", BuildConfig{Shards: 1, Policy: "bogus", Opts: opts}); err == nil {
		t.Error("unknown policy accepted")
	}
}

func TestRebalance(t *testing.T) {
	docs := []string{
		"<lib><b>1</b></lib>", "<lib><b>2</b><b>3</b></lib>", "<lib><b>4</b></lib>",
	}
	f, c := buildFed(t, docs, 2, PolicyRange)
	const q = `for $b in /lib/b return $b`
	want, _, _ := coordAnswer(t, c, q)

	mem := storage.NewMemFS()
	opts := vectorize.Options{PoolPages: 8, FS: mem}
	if _, err := Rebalance(f, "fed2", BuildConfig{Shards: 3, Policy: PolicyHash, Opts: opts}); err != nil {
		t.Fatal(err)
	}
	f2, err := OpenFederation("fed2", opts)
	if err != nil {
		t.Fatal(err)
	}
	defer f2.Close()
	c2 := NewCoordinator(f2, Config{PlanCacheSize: 8, ResultCacheSize: 8})
	got, _, _ := coordAnswer(t, c2, q)
	if got != want {
		t.Errorf("rebalanced answer differs:\n got: %s\nwant: %s", got, want)
	}
}

func TestShardable(t *testing.T) {
	const rootTag = "root"
	cases := []struct {
		query  string
		want   bool
		reason string // substring of the expected reason when !want
	}{
		{`for $x in /root/a return $x`, true, ""},
		{`for $x in /root/a/b where $x/c = 'v' return $x/d`, true, ""},
		{`for $x in //a return $x`, true, ""},
		{`for $x in /root return $x/a`, true, ""},
		{`for $x in //root return $x/a`, true, ""},
		{`for $x in /root, $y in $x/a return $y/b`, true, ""},
		{`for $x in /root return $x`, false, "returns the document root"},
		{`for $x in //* return $x`, false, "returns the document root"},
		{`for $x in /root where $x/a = 'v' return $x/b`, false, "filters on the document root"},
		{`for $x in /root return <r>{$x/a}{$x/b}</r>`, false, "multiple projections"},
		{`for $x in /root return <r>{$x/a}</r>`, false, "constructs an element"},
		{`for $x in /root, $y in $x/a return <r>{$y/b}{$x/c}</r>`, false, "multiple projections"},
		{`for $x in /root, $y in $x/a, $z in $x/b return $z`, false, "multiple projections"},
		{`for $x in /root return <r>'c'</r>`, false, "no projection"},
	}
	for _, tc := range cases {
		parsed, err := xq.Parse(tc.query)
		if err != nil {
			t.Fatalf("%q: %v", tc.query, err)
		}
		plan, err := qgraph.Build(parsed)
		if err != nil {
			t.Fatalf("%q: %v", tc.query, err)
		}
		ok, reason := Shardable(plan, rootTag)
		if ok != tc.want {
			t.Errorf("Shardable(%q) = %v (%s), want %v", tc.query, ok, reason, tc.want)
			continue
		}
		if !tc.want && !strings.Contains(reason, tc.reason) {
			t.Errorf("Shardable(%q) reason = %q, want substring %q", tc.query, reason, tc.reason)
		}
	}
}

// TestMergeSingleShard: a 1-shard federation is the degenerate merge —
// byte-identical to the union baseline with every document in one repo.
func TestMergeSingleShard(t *testing.T) {
	docs := []string{"<lib><b><t>x</t></b><b><t>y</t></b></lib>", "<lib><b><t>z</t></b></lib>"}
	f, c := buildFed(t, docs, 1, PolicyRange)
	for _, q := range []string{
		`for $b in /lib/b return $b/t`,
		`for $b in /lib/b return $b`,
	} {
		got, _, _ := coordAnswer(t, c, q)
		if want := unionAnswer(t, f, docs, q); got != want {
			t.Errorf("%q:\n got: %s\nwant: %s", q, got, want)
		}
	}
}

// TestMergeEmptyShard: shards the policy left without documents (and
// shards whose documents simply don't match) contribute empty results,
// and the merge still equals the union.
func TestMergeEmptyShard(t *testing.T) {
	docs := []string{"<lib><b><t>x</t></b></lib>"}
	// Range policy over 4 shards with one document: shards 1-3 hold only
	// the bare <lib/> placeholder.
	f, c := buildFed(t, docs, 4, PolicyRange)
	const q = `for $b in /lib/b return $b/t`
	got, res, _ := coordAnswer(t, c, q)
	if want := unionAnswer(t, f, docs, q); got != want {
		t.Errorf("%q:\n got: %s\nwant: %s", q, got, want)
	}
	if res.StaticallyEmpty {
		t.Error("non-empty merged result flagged statically empty")
	}
}

// TestMergeRunCompression: identical result subtrees meeting at a shard
// boundary re-merge into one counted run, exactly as a single-repo
// evaluation over the union would have produced.
func TestMergeRunCompression(t *testing.T) {
	// Both documents yield structurally identical <b><t>#</t></b> result
	// subtrees, so the merged result root must carry one run-compressed
	// edge, not one edge per shard.
	docs := []string{
		"<lib><b><t>x</t></b><b><t>y</t></b></lib>",
		"<lib><b><t>z</t></b></lib>",
	}
	f, c := buildFed(t, docs, 2, PolicyRange)
	const q = `for $b in /lib/b return $b`
	got, res, _ := coordAnswer(t, c, q)
	if want := unionAnswer(t, f, docs, q); got != want {
		t.Errorf("%q:\n got: %s\nwant: %s", q, got, want)
	}
	root := res.Repo.Skel.Root
	if len(root.Edges) != 1 {
		t.Fatalf("merged result root has %d edges, want 1 run-compressed edge", len(root.Edges))
	}
	if root.Edges[0].Count != 3 {
		t.Errorf("merged run count = %d, want 3", root.Edges[0].Count)
	}
}

// TestMergeAllShardsStaticallyEmpty: when the static checker proves the
// query empty against every shard's catalog, the short-circuit must
// propagate through the coordinator — per-shard static_empty fires once
// per shard, the merged result is flagged, and the coordinator counts
// one statically-empty federation answer.
func TestMergeAllShardsStaticallyEmpty(t *testing.T) {
	docs := []string{"<lib><b>x</b></lib>", "<lib><b>y</b></lib>", "<lib><b>z</b></lib>"}
	f, c := buildFed(t, docs, 2, PolicyHash)
	const q = `for $n in /lib/nosuchtag return $n` // no catalog path in any shard
	want := unionAnswer(t, f, docs, q)             // before the counter snapshot: this evaluation counts too

	coreEmpty := obs.GetCounter("core.static_empty").Load()
	shardEmpty := obs.GetCounter("shard.static_empty").Load()
	merges := obs.GetCounter("shard.merges").Load()
	got, res, _ := coordAnswer(t, c, q)
	if got != want {
		t.Errorf("%q:\n got: %s\nwant: %s", q, got, want)
	}
	if !res.StaticallyEmpty {
		t.Error("all shards statically empty, merged result not flagged StaticallyEmpty")
	}
	if res.Stats.Tuples != 0 || res.Stats.VectorsOpened != 0 {
		t.Errorf("statically-empty merge did work: %+v", res.Stats)
	}
	if d := obs.GetCounter("core.static_empty").Load() - coreEmpty; d != int64(len(f.Shards)) {
		t.Errorf("core.static_empty delta = %d, want %d (one per shard)", d, len(f.Shards))
	}
	if d := obs.GetCounter("shard.static_empty").Load() - shardEmpty; d != 1 {
		t.Errorf("shard.static_empty delta = %d, want 1", d)
	}
	if d := obs.GetCounter("shard.merges").Load() - merges; d != 1 {
		t.Errorf("shard.merges delta = %d, want 1", d)
	}
}

// TestUnionFallback: a query the classifier rejects still answers, via
// the union view, identically to the single-repo baseline.
func TestUnionFallback(t *testing.T) {
	docs := []string{
		"<lib><b><t>x</t></b><flag>on</flag></lib>",
		"<lib><b><t>y</t></b></lib>",
	}
	f, c := buildFed(t, docs, 2, PolicyRange)
	fallbacks := obs.GetCounter("shard.queries_union_fallback").Load()
	scattered := obs.GetCounter("shard.queries_scattered").Load()

	// Filtering on the root is the canonical cross-document hazard: only
	// one document carries <flag>on</flag>, but the union root sees it,
	// so the union answer includes every document's titles.
	const q = `for $x in /lib where $x/flag = 'on' return $x/b/t`
	if ok, reason, err := c.Shardable(q); err != nil || ok {
		t.Fatalf("Shardable(%q) = %v, %q, %v; want a fallback", q, ok, reason, err)
	}
	got, _, _ := coordAnswer(t, c, q)
	if want := unionAnswer(t, f, docs, q); got != want {
		t.Errorf("%q:\n got: %s\nwant: %s", q, got, want)
	}
	if !strings.Contains(got, "x") || !strings.Contains(got, "y") {
		t.Errorf("union semantics should include every document's titles, got %s", got)
	}
	if d := obs.GetCounter("shard.queries_union_fallback").Load() - fallbacks; d != 1 {
		t.Errorf("shard.queries_union_fallback delta = %d, want 1", d)
	}
	if d := obs.GetCounter("shard.queries_scattered").Load() - scattered; d != 0 {
		t.Errorf("shard.queries_scattered delta = %d, want 0", d)
	}
}

// TestCoordinatorResultCache: repeats hit the merged-result cache; an
// append on any shard structurally invalidates it.
func TestCoordinatorResultCache(t *testing.T) {
	docs := []string{"<lib><b>x</b></lib>", "<lib><b>y</b></lib>"}
	_, c := buildFed(t, docs, 2, PolicyRange)
	const q = `for $b in /lib/b return $b`
	first, _, src1 := coordAnswer(t, c, q)
	if src1.Cached() {
		t.Fatalf("first answer source = %s", src1)
	}
	second, _, src2 := coordAnswer(t, c, q)
	if src2 != core.SourceResultCache {
		t.Errorf("repeat source = %s, want result-cache", src2)
	}
	if first != second {
		t.Error("cached answer differs from evaluated answer")
	}

	if err := c.Federation().Shards[0].Append(strings.NewReader("<lib><b>zz</b></lib>")); err != nil {
		t.Fatal(err)
	}
	third, _, src3 := coordAnswer(t, c, q)
	if src3.Cached() {
		t.Errorf("post-append source = %s, want eval", src3)
	}
	if !strings.Contains(third, "zz") || third == second {
		t.Errorf("post-append answer missing appended data: %s", third)
	}
}

// TestCoordinatorDegraded: a quarantined shard yields a typed degraded
// error on both the scatter and union paths — never a partial answer.
func TestCoordinatorDegraded(t *testing.T) {
	docs := []string{"<lib><b><t>x</t></b></lib>", "<lib><b><t>y</t></b></lib>"}
	f, c := buildFed(t, docs, 2, PolicyRange)
	name := f.Shards[0].Vectors.Names()[0]
	f.Shards[0].Health.Quarantine(name, "test fence")
	defer f.Shards[0].Health.Clear(name)

	for _, q := range []string{
		`for $b in /lib/b return $b/t`,                  // scatters
		`for $x in /lib where $x/b/t = 'x' return $x/b`, // union fallback
	} {
		_, _, err := c.Query(context.Background(), q)
		if err == nil {
			t.Fatalf("%q: degraded federation answered", q)
		}
		var de *DegradedError
		if !errors.As(err, &de) {
			t.Errorf("%q: error %v is not a DegradedError", q, err)
			continue
		}
		if de.Shard != 0 {
			t.Errorf("%q: degraded shard = %d, want 0", q, de.Shard)
		}
		if !errors.Is(err, core.ErrQuarantined) {
			t.Errorf("%q: degraded error does not unwrap to ErrQuarantined: %v", q, err)
		}
	}
}

// TestScatterMeterAttribution: per-shard sub-queries charge their own
// meters, and the fold-up means the request meter sees the federation
// total (here, via the cache-hit counter of fully cached shard answers).
func TestScatterMeterAttribution(t *testing.T) {
	docs := []string{"<lib><b>x</b></lib>", "<lib><b>y</b></lib>"}
	_, c := buildFed(t, docs, 2, PolicyRange)
	const q = `for $b in /lib/b return $b`
	if _, _, err := c.Query(context.Background(), q); err != nil {
		t.Fatal(err)
	}
	// Second pass from a cold coordinator key: drop the merged-result
	// cache by using a spelling variant, so the coordinator scatters again
	// and every shard answers from its own result cache.
	m := &obs.TaskMeter{}
	ctx := obs.WithMeter(context.Background(), m)
	variant := `for $b in /lib/b  return $b` // same canon, different raw text
	res, src, err := c.Query(ctx, variant)
	if err != nil {
		t.Fatal(err)
	}
	if res == nil {
		t.Fatal("nil result")
	}
	switch src {
	case core.SourceResultCache:
		// The coordinator's own cache answered (canonical key matched):
		// exactly one cache hit on the request meter.
		if got := m.Counters().CacheHits; got != 1 {
			t.Errorf("cache hits = %d, want 1", got)
		}
	default:
		// Scattered over per-shard caches: one fold-up per shard.
		if got := m.Counters().CacheHits; got != 2 {
			t.Errorf("folded cache hits = %d, want 2 (one per shard)", got)
		}
	}
}

func TestConcatVector(t *testing.T) {
	mk := func(vals ...string) vector.Vector { return &vector.Mem{Values: vals} }
	v := newConcatVector([]vector.Vector{mk("a", "b"), mk(), mk("c"), mk("d", "e", "f")})
	if v.Len() != 6 {
		t.Fatalf("Len = %d, want 6", v.Len())
	}
	want := []string{"a", "b", "c", "d", "e", "f"}
	for start := int64(0); start <= 6; start++ {
		for n := int64(0); start+n <= 6; n++ {
			var got []string
			var positions []int64
			err := v.Scan(start, n, func(pos int64, val []byte) error {
				positions = append(positions, pos)
				got = append(got, string(val))
				return nil
			})
			if err != nil {
				t.Fatalf("Scan(%d, %d): %v", start, n, err)
			}
			if int64(len(got)) != n {
				t.Fatalf("Scan(%d, %d) yielded %d values", start, n, len(got))
			}
			for i := range got {
				if positions[i] != start+int64(i) || got[i] != want[start+int64(i)] {
					t.Fatalf("Scan(%d, %d)[%d] = (%d, %q), want (%d, %q)",
						start, n, i, positions[i], got[i], start+int64(i), want[start+int64(i)])
				}
			}
		}
	}
	sentinel := errors.New("stop")
	if err := v.Scan(1, 4, func(pos int64, val []byte) error {
		if pos == 3 {
			return sentinel
		}
		return nil
	}); !errors.Is(err, sentinel) {
		t.Errorf("Scan error propagation: got %v", err)
	}
}
