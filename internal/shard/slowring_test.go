package shard

import (
	"context"
	"errors"
	"testing"
	"time"

	"vxml/internal/obs"
)

// TestSlowRingShardAttribution pins the federated slow-ring schema: a
// degraded scatter is always captured, and the record carries per-shard
// rows that name the failing shard with its error and retry count —
// not just the coordinator-level totals.
func TestSlowRingShardAttribution(t *testing.T) {
	docs := []string{"<lib><b><t>x</t></b></lib>", "<lib><b><t>y</t></b></lib>"}
	f, c := buildFed(t, docs, 2, PolicyRange)

	// Thresholds no healthy query can cross: only the degraded-capture
	// path may record.
	obs.SlowQueries.Configure(time.Hour, 1<<40, 8)
	defer obs.SlowQueries.Configure(0, 0, 64)

	name := f.Shards[0].Vectors.Names()[0]
	f.Shards[0].Health.Quarantine(name, "test fence")
	defer f.Shards[0].Health.Clear(name)

	_, _, err := c.Query(context.Background(), `for $b in /lib/b return $b/t`)
	var de *DegradedError
	if !errors.As(err, &de) || de.Shard != 0 {
		t.Fatalf("want DegradedError on shard 0, got %v", err)
	}

	recs := obs.SlowQueries.List()
	if len(recs) == 0 {
		t.Fatal("degraded scatter did not capture a slow-ring record")
	}
	rec := recs[0]
	if len(rec.Shards) != 2 {
		t.Fatalf("record has %d shard rows, want 2: %+v", len(rec.Shards), rec)
	}
	if rec.Shards[0].Shard != 0 || rec.Shards[0].Error == "" {
		t.Errorf("shard 0 row should name the fence error: %+v", rec.Shards[0])
	}
	if rec.Shards[1].Error != "" {
		t.Errorf("healthy shard 1 row carries an error: %+v", rec.Shards[1])
	}
	if rec.Error == "" {
		t.Error("record-level error is empty for a degraded query")
	}
}
