package shard

import (
	"errors"
	"fmt"
	"testing"

	"vxml/internal/core"
	"vxml/internal/skeleton"
	"vxml/internal/storage"
	"vxml/internal/vector"
	"vxml/internal/vectorize"
	"vxml/internal/xmlmodel"
)

// failingSet stands in for a shard result whose vectors cannot be read
// back (a corrupt page surfacing at merge time).
type failingSet struct{ err error }

func (s *failingSet) Names() []string                      { return []string{"v"} }
func (s *failingSet) Vector(string) (vector.Vector, error) { return nil, s.err }

func minimalResult(t *testing.T, vectors vector.Set) *core.Result {
	t.Helper()
	syms := xmlmodel.NewSymbols()
	b := skeleton.NewBuilder()
	skel := b.Finish(b.Make(syms.Intern("r"), nil))
	return &core.Result{
		Repo: &vectorize.MemRepository{Syms: syms, Skel: skel, Vectors: vectors},
	}
}

// A shard whose result vectors fail to read must surface from
// MergeResults as a DegradedError naming that shard — the coordinator's
// typed per-shard failure — with the storage taxonomy (errors.Is on
// ErrCorrupt) still visible through the wrap. Regression test for the
// faultflow finding that MergeResults leaked unclassified storage
// errors.
func TestMergeResultsDegradedOnVectorFailure(t *testing.T) {
	readErr := fmt.Errorf("read page 3: %w", storage.ErrCorrupt)
	results := []*core.Result{
		minimalResult(t, vector.NewMemSet()),
		minimalResult(t, &failingSet{err: readErr}),
	}
	_, err := MergeResults(results)
	if err == nil {
		t.Fatal("MergeResults succeeded with an unreadable shard vector")
	}
	var deg *DegradedError
	if !errors.As(err, &deg) {
		t.Fatalf("error %v is not a DegradedError", err)
	}
	if deg.Shard != 1 {
		t.Errorf("DegradedError.Shard = %d, want 1", deg.Shard)
	}
	if !errors.Is(err, storage.ErrCorrupt) {
		t.Errorf("error %v does not unwrap to storage.ErrCorrupt", err)
	}
}

// The union view's concatenated set classifies the same way: a shard
// vector that fails to open is a typed per-shard degradation.
func TestConcatSetVectorDegradedOnFailure(t *testing.T) {
	openErr := fmt.Errorf("open vector: %w", storage.ErrCorrupt)
	s := newConcatSet([]vector.Set{vector.NewMemSet(), &failingSet{err: openErr}})
	_, err := s.Vector("v")
	if err == nil {
		t.Fatal("concatSet.Vector succeeded with an unreadable part")
	}
	var deg *DegradedError
	if !errors.As(err, &deg) {
		t.Fatalf("error %v is not a DegradedError", err)
	}
	if deg.Shard != 1 {
		t.Errorf("DegradedError.Shard = %d, want 1", deg.Shard)
	}
	if !errors.Is(err, storage.ErrCorrupt) {
		t.Errorf("error %v does not unwrap to storage.ErrCorrupt", err)
	}
}
