module vxml

go 1.22
