# Convenience targets; everything is plain `go` underneath.

.PHONY: test race vet bench bench-full fuzz examples clean

test:
	go test ./...

# The full suite under the race detector — required before merging
# anything that touches the query engine, the buffer pool or the fd gate.
race:
	go test -race ./...

vet:
	gofmt -l . && go vet ./...

# The per-table/figure benchmarks at test scale.
bench:
	go test -bench=. -benchmem ./...

# The full-scale experiment suite (Tables 1-3, Figure 8, ablations).
bench-full:
	go run ./cmd/vxbench -work bench-work all

fuzz:
	go test -fuzz FuzzParse -fuzztime 30s ./internal/xq/
	go test -fuzz FuzzParseSerialize -fuzztime 30s ./internal/xmlmodel/

examples:
	go run ./examples/quickstart
	go run ./examples/bibjoin
	go run ./examples/treebank
	go run ./examples/skyserver
	go run ./examples/extensions

clean:
	rm -rf bench-work
