# Convenience targets; everything is plain `go` underneath.

.PHONY: test race vet lint bench bench-full bench-snapshot fuzz examples clean

test:
	go test ./...

# The full suite under the race detector — required before merging
# anything that touches the query engine, the buffer pool or the fd gate.
race:
	go test -race ./...

vet:
	gofmt -l . && go vet ./...

# The full static-analysis gate: the repo's own invariant suite (vxlint,
# see internal/analysis), formatting, go vet, and — when installed —
# staticcheck and govulncheck. CI runs this; it must exit 0.
lint: vet
	go run ./cmd/vxlint ./...
	@if command -v staticcheck >/dev/null 2>&1; then staticcheck ./...; \
	else echo "lint: staticcheck not installed, skipping"; fi
	@if command -v govulncheck >/dev/null 2>&1; then govulncheck ./...; \
	else echo "lint: govulncheck not installed, skipping"; fi

# The per-table/figure benchmarks at test scale.
bench:
	go test -bench=. -benchmem ./...

# The full-scale experiment suite (Tables 1-3, Figure 8, ablations).
bench-full:
	go run ./cmd/vxbench -work bench-work all

# Machine-readable benchmark records for this change: concurrent serving
# throughput plus the query-scoped telemetry overhead (BENCH_PR6.json),
# and the sharded scatter-gather serving grid (BENCH_PR8.json). CI runs
# this and uploads both as artifacts.
bench-snapshot:
	go run ./cmd/vxbench -quick -work bench-work -o BENCH_PR6.json snapshot
	go run ./cmd/vxbench -quick -work bench-work -o BENCH_PR8.json sharded

fuzz:
	go test -fuzz FuzzParse -fuzztime 30s ./internal/xq/
	go test -fuzz FuzzParseSerialize -fuzztime 30s ./internal/xmlmodel/

examples:
	go run ./examples/quickstart
	go run ./examples/bibjoin
	go run ./examples/treebank
	go run ./examples/skyserver
	go run ./examples/extensions

clean:
	rm -rf bench-work
