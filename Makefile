# Convenience targets; everything is plain `go` underneath.

.PHONY: test race vet lint lint-tools bench bench-full bench-snapshot fuzz examples clean

test:
	go test ./...

# The full suite under the race detector — required before merging
# anything that touches the query engine, the buffer pool or the fd gate.
race:
	go test -race ./...

vet:
	gofmt -l . && go vet ./...

# Pinned external analyzer versions. CI installs exactly these (make
# lint-tools), so a staticcheck upgrade is a reviewed diff here, never a
# surprise red build.
STATICCHECK_VERSION := 2025.1.1
GOVULNCHECK_VERSION := v1.1.4

# The full static-analysis gate: the repo's own invariant suite (vxlint,
# see internal/analysis), formatting, go vet, staticcheck and
# govulncheck. CI runs this; it must exit 0. Missing external tools FAIL
# the target — a green `make lint` must mean the same thing everywhere.
# Set LINT_SKIP_EXTERNAL=1 to run only the in-repo suite (quick local
# iteration on a machine without the tools installed).
lint: vet
	go run ./cmd/vxlint ./...
ifdef LINT_SKIP_EXTERNAL
	@echo "lint: LINT_SKIP_EXTERNAL set; skipping staticcheck and govulncheck"
else
	@command -v staticcheck >/dev/null 2>&1 || { \
	  echo "lint: staticcheck not installed; run 'make lint-tools' (pins $(STATICCHECK_VERSION)) or set LINT_SKIP_EXTERNAL=1"; exit 1; }
	staticcheck ./...
	@command -v govulncheck >/dev/null 2>&1 || { \
	  echo "lint: govulncheck not installed; run 'make lint-tools' (pins $(GOVULNCHECK_VERSION)) or set LINT_SKIP_EXTERNAL=1"; exit 1; }
	govulncheck ./...
endif

# Install the pinned external analyzers CI runs.
lint-tools:
	go install honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION)
	go install golang.org/x/vuln/cmd/govulncheck@$(GOVULNCHECK_VERSION)

# The per-table/figure benchmarks at test scale.
bench:
	go test -bench=. -benchmem ./...

# The full-scale experiment suite (Tables 1-3, Figure 8, ablations).
bench-full:
	go run ./cmd/vxbench -work bench-work all

# Machine-readable benchmark records for this change: concurrent serving
# throughput plus the query-scoped telemetry overhead (BENCH_PR6.json),
# and the sharded scatter-gather serving grid (BENCH_PR8.json). CI runs
# this and uploads both as artifacts.
bench-snapshot:
	go run ./cmd/vxbench -quick -work bench-work -o BENCH_PR6.json snapshot
	go run ./cmd/vxbench -quick -work bench-work -o BENCH_PR8.json sharded
	go run ./cmd/vxbench -quick -work bench-work -o BENCH_PR10.json spans

fuzz:
	go test -fuzz FuzzParse -fuzztime 30s ./internal/xq/
	go test -fuzz FuzzParseSerialize -fuzztime 30s ./internal/xmlmodel/

examples:
	go run ./examples/quickstart
	go run ./examples/bibjoin
	go run ./examples/treebank
	go run ./examples/skyserver
	go run ./examples/extensions

clean:
	rm -rf bench-work
